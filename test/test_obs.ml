(* Tests for lf_obs: the ring buffer's window-and-drop accounting, the
   log-bucketed histogram, the contention profiler, the recorder's level
   gating (including the zero-allocation off path), determinism of
   simulator traces, and the well-formedness of both exporters.

   The recorder is module-level state, so every test that turns it on
   resets it and turns it off again; alcotest runs these sequentially in
   one process. *)

module Ring = Lf_obs.Ring
module Hist = Lf_obs.Hist
module Profile = Lf_obs.Profile
module Recorder = Lf_obs.Recorder
module Obs_event = Lf_obs.Obs_event
module Json = Lf_obs.Obs_json
module Ev = Lf_kernel.Mem_event

(* --- Ring --- *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 0 in
  Alcotest.(check int) "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "oldest first" [ 1; 2 ] (Ring.to_list r);
  Alcotest.(check int) "no drops yet" 0 (Ring.dropped r)

let test_ring_wraparound () =
  let r = Ring.create ~capacity:4 0 in
  for i = 1 to 6 do
    Ring.push r i
  done;
  Alcotest.(check int) "length capped" 4 (Ring.length r);
  Alcotest.(check int) "two dropped" 2 (Ring.dropped r);
  Alcotest.(check (list int)) "window ends at now" [ 3; 4; 5; 6 ]
    (Ring.to_list r);
  (* Retained + dropped always accounts for every push. *)
  Alcotest.(check int) "conservation" 6 (Ring.length r + Ring.dropped r);
  Ring.clear r 0;
  Alcotest.(check int) "clear empties" 0 (Ring.length r);
  Alcotest.(check int) "clear resets drops" 0 (Ring.dropped r)

let test_ring_bad_capacity () =
  match Ring.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

(* --- Hist --- *)

let test_hist_buckets () =
  (* Every value lands in the bucket [index_of] names, and indices are
     monotone in the value. *)
  let vals =
    [ 0; 1; 15; 16; 17; 100; 1023; 1024; 1_000_000;
      (* around the coarse/fine regime boundary (the ~1 ms octave) *)
      (1 lsl 20) - 1; 1 lsl 20; (1 lsl 20) + 1; 3_999_700; 4_000_000;
      123_456_789 ]
  in
  List.iter
    (fun v ->
      let i = Hist.index_of v in
      if not (Hist.bucket_low i <= v && v < Hist.bucket_high i) then
        Alcotest.failf "value %d outside its bucket [%d, %d)" v
          (Hist.bucket_low i) (Hist.bucket_high i))
    vals;
  let rec mono = function
    | a :: (b :: _ as rest) ->
        if Hist.index_of a > Hist.index_of b then
          Alcotest.failf "index_of not monotone at %d, %d" a b;
        mono rest
    | _ -> ()
  in
  mono vals

let test_hist_percentiles () =
  let h = Hist.create () in
  for v = 0 to 999 do
    Hist.add h v
  done;
  Alcotest.(check int) "count" 1000 (Hist.count h);
  Alcotest.(check int) "min" 0 (Hist.min_value h);
  Alcotest.(check int) "max" 999 (Hist.max_value h);
  (* Bucket-midpoint representatives: within the 6.25% quantization
     bound of the true percentile. *)
  let p50 = Hist.percentile h 0.5 in
  if Float.abs (p50 -. 499.5) > 0.0625 *. 499.5 +. 1.0 then
    Alcotest.failf "p50 %f too far from 499.5" p50;
  (* The tail quantile reports the exact maximum, not a midpoint. *)
  Alcotest.(check (float 1e-9)) "p100 is max" 999.0 (Hist.percentile h 1.0)

let test_hist_tail_resolution () =
  (* The fine regime keeps multi-millisecond values distinguishable: values
     1% apart above ~1 ms land in distinct buckets (quantization error is
     0.78% there), so p999 and p9999 cannot collapse to one representative
     the way 6.25%-wide buckets made them in EXP-19. *)
  let a = 3_200_000 and b = 3_232_000 in
  if Hist.index_of a = Hist.index_of b then
    Alcotest.failf "values %d and %d share a bucket" a b;
  let h = Hist.create () in
  for _ = 1 to 9_998 do
    Hist.add h 10_000
  done;
  Hist.add h a;
  Hist.add h b;
  let p999 = Hist.percentile h 0.999 and p9999 = Hist.p9999 h in
  Alcotest.(check bool) "tail quantiles distinct" true (p999 < p9999)

let test_hist_empty_raises () =
  let h = Hist.create () in
  match Hist.percentile h 0.5 with
  | _ -> Alcotest.fail "percentile on empty histogram returned"
  | exception Invalid_argument _ -> ()

let test_hist_merge () =
  (* Merging per-domain histograms then reading percentiles equals
     recording everything into one. *)
  let a = Hist.create () and b = Hist.create () and all = Hist.create () in
  for v = 0 to 499 do
    Hist.add a v;
    Hist.add all v
  done;
  for v = 500 to 999 do
    Hist.add b (v * 3);
    Hist.add all (v * 3)
  done;
  let m = Hist.create () in
  Hist.merge_into ~into:m a;
  Hist.merge_into ~into:m b;
  Alcotest.(check int) "count" (Hist.count all) (Hist.count m);
  Alcotest.(check int) "sum" (Hist.sum all) (Hist.sum m);
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f" (p *. 100.))
        (Hist.percentile all p) (Hist.percentile m p))
    [ 0.5; 0.9; 0.99; 1.0 ]

(* --- Profile --- *)

let test_profile_report () =
  let p = Profile.create () in
  Profile.record p ~key:5 Ev.Flagging;
  Profile.record p ~key:5 Ev.Flagging;
  Profile.record p ~key:5 Ev.Insertion;
  Profile.record p ~key:9 Ev.Marking;
  Profile.record p ~key:Profile.no_key Ev.Physical_delete;
  let r = Profile.report p in
  Alcotest.(check int) "total" 5 r.r_total;
  (match r.r_by_phase with
  | (phase, fails) :: _ ->
      Alcotest.(check string) "hottest phase" "flag" phase;
      Alcotest.(check int) "flag fails" 2 fails
  | [] -> Alcotest.fail "empty phase ranking");
  (match r.r_hot_keys with
  | hk :: _ ->
      Alcotest.(check int) "hottest key" 5 hk.Profile.hk_key;
      Alcotest.(check int) "its fails" 3 hk.Profile.hk_fails;
      Alcotest.(check string) "its dominant phase" "flag" hk.Profile.hk_phase
  | [] -> Alcotest.fail "empty hot-key ranking");
  (* The no-span sentinel counts toward phases but never ranks as a key. *)
  List.iter
    (fun hk ->
      if hk.Profile.hk_key = Profile.no_key then
        Alcotest.fail "sentinel key ranked")
    r.r_hot_keys

(* --- Recorder level gating --- *)

let with_recorder ~level ~clock f =
  Recorder.set_level Recorder.Off;
  Recorder.reset ();
  Recorder.set_clock clock;
  Recorder.set_level level;
  Fun.protect
    ~finally:(fun () ->
      Recorder.set_level Recorder.Off;
      Recorder.set_clock Recorder.Real)
    f

let test_off_records_nothing () =
  Recorder.set_level Recorder.Off;
  Recorder.reset ();
  Recorder.on_read ();
  Recorder.on_cas Ev.Insertion true;
  Recorder.on_event Ev.Retry;
  Recorder.span_begin ~op:Obs_event.Insert ~key:1;
  Recorder.span_end ~op:Obs_event.Insert ~ok:true;
  let c = Recorder.tallies () in
  Alcotest.(check int) "no reads" 0 c.Lf_kernel.Counters.reads;
  Alcotest.(check int) "no retries" 0 c.Lf_kernel.Counters.retries;
  Alcotest.(check int) "no events" 0 (Recorder.event_count ());
  List.iter
    (fun (_, n) -> Alcotest.(check int) "no ops" 0 n)
    (Recorder.ops_counts ())

let test_off_fast_path_no_alloc () =
  Recorder.set_level Recorder.Off;
  Recorder.reset ();
  (* Warm up so any one-time allocation is out of the measured window. *)
  Recorder.on_read ();
  Recorder.on_cas Ev.Flagging false;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Recorder.on_read ();
    Recorder.on_write ();
    Recorder.on_cas Ev.Flagging false;
    Recorder.on_event Ev.Retry;
    Recorder.span_begin ~op:Obs_event.Delete ~key:7;
    Recorder.span_end ~op:Obs_event.Delete ~ok:true
  done;
  let dw = Gc.minor_words () -. w0 in
  (* 60k disabled entry points: a per-call allocation would show as
     >= 120k words.  Allow slack for the Gc.minor_words calls. *)
  if dw > 256.0 then Alcotest.failf "off path allocated %.0f words" dw

let test_counters_level () =
  with_recorder ~level:Recorder.Counters ~clock:Recorder.Real (fun () ->
      Recorder.on_read ();
      (* read tallying starts at Histograms *)
      Recorder.on_cas Ev.Flagging true;
      Recorder.on_cas Ev.Flagging false;
      Recorder.on_event Ev.Retry;
      Recorder.span_end ~op:Obs_event.Find ~ok:true;
      let c = Recorder.tallies () in
      let fi = Lf_kernel.Counters.kind_index Ev.Flagging in
      Alcotest.(check int) "cas attempts" 2
        c.Lf_kernel.Counters.cas_attempts.(fi);
      Alcotest.(check int) "cas successes" 1
        c.Lf_kernel.Counters.cas_successes.(fi);
      Alcotest.(check int) "retries" 1 c.Lf_kernel.Counters.retries;
      Alcotest.(check int) "reads gated" 0 c.Lf_kernel.Counters.reads;
      Alcotest.(check int) "ops counted" 1
        (List.assoc Obs_event.Find (Recorder.ops_counts ()));
      Alcotest.(check int) "no ring events" 0 (Recorder.event_count ()))

let test_histogram_level_spans () =
  with_recorder ~level:Recorder.Histograms
    ~clock:(Recorder.Manual (let t = ref 0 in fun () -> incr t; !t * 100))
    (fun () ->
      Recorder.span_begin ~op:Obs_event.Insert ~key:3;
      Recorder.on_cas Ev.Insertion false;
      (* failed C&S inside the span: attributed to key 3 *)
      Recorder.span_end ~op:Obs_event.Insert ~ok:true;
      let h = Recorder.latency Obs_event.Insert in
      Alcotest.(check int) "one latency sample" 1 (Hist.count h);
      let r = Recorder.profile_report () in
      Alcotest.(check int) "one failure" 1 r.Profile.r_total;
      match r.Profile.r_hot_keys with
      | [ hk ] ->
          Alcotest.(check int) "attributed key" 3 hk.Profile.hk_key;
          Alcotest.(check string) "attributed phase" "insert"
            hk.Profile.hk_phase
      | l -> Alcotest.failf "expected one hot key, got %d" (List.length l))

(* --- Simulator traces: determinism and exporter well-formedness --- *)

module Traced_sim = Lf_obs.Trace_mem.Make (Lf_dsim.Sim_mem)
module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Traced_sim)

let sim_trace ~seed =
  with_recorder ~level:Recorder.Tracing ~clock:Recorder.Sim_steps (fun () ->
      let t = FRS.create () in
      let ops =
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> FRS.insert t k k);
            delete = (fun k -> FRS.delete t k);
            find = (fun k -> FRS.mem t k);
          }
      in
      ignore
        (Lf_workload.Sim_driver.run_mixed
           ~policy:(Lf_dsim.Sim.Random seed) ~procs:4 ~ops_per_proc:40
           ~key_range:32
           ~mix:{ insert_pct = 40; delete_pct = 40 }
           ~seed ops);
      Lf_obs.Chrome_trace.to_string (Recorder.events ()))

let test_sim_trace_deterministic () =
  let a = sim_trace ~seed:11 in
  let b = sim_trace ~seed:11 in
  Alcotest.(check bool) "non-trivial" true (String.length a > 200);
  Alcotest.(check string) "byte-identical across reruns" a b

let test_chrome_trace_well_formed () =
  let s = sim_trace ~seed:3 in
  (match Lf_obs.Chrome_trace.check s with
  | Ok () -> ()
  | Error e -> Alcotest.failf "checker rejected trace: %s" e);
  (* Independent look with the JSON reader: spans pair up and every
     pid/tid is a recorded domain/lane. *)
  let json =
    match Json.parse s with
    | Ok j -> j
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let events =
    match Option.bind (Json.member "traceEvents" json) Json.to_list_opt with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  let field name ev = Option.bind (Json.member name ev) Json.to_string_opt in
  let num name ev = Option.bind (Json.member name ev) Json.to_num_opt in
  let begins = ref 0 and ends = ref 0 in
  let names = ref [] in
  List.iter
    (fun ev ->
      (match field "ph" ev with
      | Some "B" -> incr begins
      | Some "E" -> incr ends
      | Some "M" ->
          if field "name" ev = Some "process_name" then
            names := Option.get (num "pid" ev) :: !names
      | _ -> ());
      if field "ph" ev <> Some "M" && num "pid" ev = None then
        Alcotest.fail "event without pid")
    events;
  Alcotest.(check int) "spans pair" !begins !ends;
  Alcotest.(check bool) "at least one span" true (!begins > 0);
  List.iter
    (fun ev ->
      match (field "ph" ev, num "pid" ev) with
      | (Some "B" | Some "E" | Some "i"), Some pid ->
          if not (List.mem pid !names) then
            Alcotest.failf "pid %.0f not named by metadata" pid
      | _ -> ())
    events

let test_ring_truncation_accounted () =
  Recorder.set_ring_capacity 64;
  Fun.protect
    ~finally:(fun () -> Recorder.set_ring_capacity 65536)
    (fun () ->
      let s = sim_trace ~seed:5 in
      (* Orphaned span edges are dropped by the exporter pre-pass, so a
         ring-truncated trace still checks. *)
      (match Lf_obs.Chrome_trace.check s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "truncated trace rejected: %s" e);
      ())

let test_recorder_drop_accounting () =
  Recorder.set_ring_capacity 32;
  Fun.protect
    ~finally:(fun () -> Recorder.set_ring_capacity 65536)
    (fun () ->
      with_recorder ~level:Recorder.Tracing ~clock:Recorder.Sim_steps
        (fun () ->
          let t = FRS.create () in
          let ops =
            Lf_workload.Sim_driver.
              {
                insert = (fun k -> FRS.insert t k k);
                delete = (fun k -> FRS.delete t k);
                find = (fun k -> FRS.mem t k);
              }
          in
          ignore
            (Lf_workload.Sim_driver.run_mixed ~procs:2 ~ops_per_proc:40
               ~key_range:16
               ~mix:{ insert_pct = 40; delete_pct = 40 }
               ~seed:2 ops);
          Alcotest.(check int) "ring full" 32 (Recorder.event_count ());
          Alcotest.(check bool) "drops counted" true (Recorder.dropped () > 0)))

(* --- Prometheus snapshot --- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_prometheus_grammar () =
  with_recorder ~level:Recorder.Histograms ~clock:Recorder.Real (fun () ->
      Recorder.span_begin ~op:Obs_event.Insert ~key:1;
      Recorder.on_cas Ev.Insertion true;
      Recorder.span_end ~op:Obs_event.Insert ~ok:true;
      let s = Lf_obs.Prom.snapshot () in
      (match Lf_obs.Prom.validate s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "snapshot rejected: %s" e);
      Alcotest.(check bool) "mentions ops metric" true
        (contains s "lf_ops_total{op=\"insert\"} 1"))

(* --- GC attribution (EXP-22) --- *)

let test_gc_attr_monotone () =
  let a = Lf_obs.Gc_attr.totals () in
  let junk = Array.init 4096 (fun i -> Some i) in
  ignore (Sys.opaque_identity junk);
  let b = Lf_obs.Gc_attr.totals () in
  let d = Lf_obs.Gc_attr.diff ~before:a b in
  Alcotest.(check bool)
    "minor words grew by at least the array" true
    (d.Lf_obs.Gc_attr.minor_words >= 4096.);
  Alcotest.(check bool)
    "counters monotone" true
    (d.Lf_obs.Gc_attr.minor_collections >= 0
    && d.Lf_obs.Gc_attr.major_collections >= 0
    && d.Lf_obs.Gc_attr.promoted_words >= 0.)

let test_gc_attr_window () =
  Lf_obs.Gc_attr.reset_window ();
  (* Boxed elements: each [Some i] is a small minor-heap block (the array
     itself, >256 words, goes straight to the major heap and would be
     invisible to [minor_words]). *)
  let junk = Array.init 4096 (fun i -> Some i) in
  ignore (Sys.opaque_identity junk);
  let w1 = Lf_obs.Gc_attr.window () in
  let w2 = Lf_obs.Gc_attr.window () in
  Alcotest.(check bool)
    "first window sees the allocation" true
    (w1.Lf_obs.Gc_attr.minor_words >= 4096.);
  Alcotest.(check bool)
    "second window starts fresh" true
    (w2.Lf_obs.Gc_attr.minor_words >= 0.
    && w2.Lf_obs.Gc_attr.minor_words < 4096.)

let test_prometheus_gc_counters () =
  with_recorder ~level:Recorder.Counters ~clock:Recorder.Real (fun () ->
      let s = Lf_obs.Prom.snapshot () in
      (match Lf_obs.Prom.validate s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "snapshot rejected: %s" e);
      List.iter
        (fun metric ->
          Alcotest.(check bool) metric true (contains s ("\n" ^ metric ^ " ")))
        [
          "lf_gc_minor_collections_total";
          "lf_gc_major_collections_total";
          "lf_gc_minor_words_total";
          "lf_gc_promoted_words_total";
        ])

let test_chrome_trace_gc_counter () =
  let json =
    Lf_obs.Chrome_trace.to_string ~gc:(Lf_obs.Gc_attr.totals ()) []
  in
  (match Lf_obs.Chrome_trace.check json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "trace with gc row rejected: %s" e);
  Alcotest.(check bool) "has gc counter row" true (contains json "\"cat\":\"gc\"")

let test_prometheus_validator_rejects () =
  List.iter
    (fun bad ->
      match Lf_obs.Prom.validate bad with
      | Ok () -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [
      "2metric 1.0\n";
      "metric{unterminated 1.0\n";
      "metric notanumber\n";
      "metric{l=\"v\"} 1.0 trailing junk here\n";
    ]

let () =
  Alcotest.run "obs"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "bad capacity" `Quick test_ring_bad_capacity;
        ] );
      ( "hist",
        [
          Alcotest.test_case "buckets" `Quick test_hist_buckets;
          Alcotest.test_case "percentiles" `Quick test_hist_percentiles;
          Alcotest.test_case "tail resolution" `Quick test_hist_tail_resolution;
          Alcotest.test_case "empty raises" `Quick test_hist_empty_raises;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "profile",
        [ Alcotest.test_case "report ranking" `Quick test_profile_report ] );
      ( "recorder",
        [
          Alcotest.test_case "off records nothing" `Quick
            test_off_records_nothing;
          Alcotest.test_case "off path allocation-free" `Quick
            test_off_fast_path_no_alloc;
          Alcotest.test_case "counters level" `Quick test_counters_level;
          Alcotest.test_case "histograms level spans" `Quick
            test_histogram_level_spans;
          Alcotest.test_case "drop accounting" `Quick
            test_recorder_drop_accounting;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "sim trace deterministic" `Quick
            test_sim_trace_deterministic;
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_well_formed;
          Alcotest.test_case "truncated trace still checks" `Quick
            test_ring_truncation_accounted;
          Alcotest.test_case "prometheus grammar" `Quick
            test_prometheus_grammar;
          Alcotest.test_case "prometheus validator rejects" `Quick
            test_prometheus_validator_rejects;
        ] );
      ( "gc attribution",
        [
          Alcotest.test_case "totals monotone" `Quick test_gc_attr_monotone;
          Alcotest.test_case "window deltas" `Quick test_gc_attr_window;
          Alcotest.test_case "prometheus gc counters" `Quick
            test_prometheus_gc_counters;
          Alcotest.test_case "chrome gc counter row" `Quick
            test_chrome_trace_gc_counter;
        ] );
    ]
