(* The service layer (lib/svc, DESIGN.md §10): breaker state-machine
   transitions, retry-budget conservation (tokens spent = retries
   issued), the shedding invariant (no admitted operation executes past
   its deadline), degraded modes through the pipeline, the coalesced
   batch path, chaos integration (rejections reported, never dropped),
   and decision-log determinism under the manual clock. *)

module Svc = Lf_svc.Svc
module Clock = Lf_svc.Clock
module Deadline = Lf_svc.Deadline
module Retry = Lf_svc.Retry
module Breaker = Lf_svc.Breaker
module Shed = Lf_svc.Shed
module Degrade = Lf_svc.Degrade
module Runner = Lf_workload.Runner
module Opgen = Lf_workload.Opgen
module Fault = Lf_fault.Fault
module FP = Lf_kernel.Fault_point

let outcome =
  Alcotest.testable
    (fun ppf o -> Format.pp_print_string ppf (Svc.outcome_to_string o))
    ( = )

(* --- Breaker transitions (pure state machine) ------------------------ *)

(* The full cycle under hand-driven ticks: [min_calls] failures trip it
   open; admissions are rejected until [open_for] has elapsed, then the
   next admission is a probe (half-open).  From there, [probes]
   consecutive successes close it — or, on the [fail_probe] branch, one
   probe failure re-opens it. *)
let test_breaker_cycle =
  Support.qcheck ~count:200 "breaker: open -> half-open -> closed / re-open"
    QCheck2.Gen.(triple (1 -- 4) (1 -- 8) bool)
    (fun (probes, min_calls, fail_probe) ->
      let cfg =
        Breaker.config ~window:1_000_000 ~min_calls ~failure_pct:50
          ~open_for:10 ~probes ()
      in
      let b = ref (Breaker.create cfg ~now:0) in
      let ok = ref (Breaker.state !b = Breaker.Closed) in
      let expect what cond = if not cond then (ok := false; ignore what) in
      for _ = 1 to min_calls do
        b := Breaker.observe !b ~now:1 ~ok:false ~latency:1
      done;
      expect "tripped" (Breaker.state !b = Breaker.Open);
      (* Still open: rejected at the door. *)
      let b1, v1 = Breaker.admit !b ~now:2 in
      b := b1;
      expect "rejects while open" (v1 = `Reject);
      (* Cool-down elapsed: the next admission is a probe. *)
      let b2, v2 = Breaker.admit !b ~now:100 in
      b := b2;
      expect "probes after open_for" (v2 = `Probe);
      expect "half-open" (Breaker.state !b = Breaker.Half_open);
      if fail_probe then begin
        b := Breaker.observe !b ~now:101 ~ok:false ~latency:1;
        expect "probe failure re-opens" (Breaker.state !b = Breaker.Open);
        let _, v = Breaker.admit !b ~now:102 in
        expect "re-open rejects" (v = `Reject)
      end
      else begin
        for i = 1 to probes do
          let b', v = Breaker.admit !b ~now:(100 + i) in
          b := b';
          expect "probe admission" (v = `Probe);
          b := Breaker.observe !b ~now:(100 + i) ~ok:true ~latency:1
        done;
        expect "closed after probes" (Breaker.state !b = Breaker.Closed);
        let _, v = Breaker.admit !b ~now:200 in
        expect "closed admits" (v = `Admit)
      end;
      !ok)

let test_breaker_latency_trips () =
  (* Slow successes count as failures: the stall-storm detector. *)
  let cfg =
    Breaker.config ~window:1000 ~min_calls:3 ~failure_pct:50
      ~latency_threshold:10 ~open_for:50 ~probes:1 ()
  in
  let b = ref (Breaker.create cfg ~now:0) in
  for i = 1 to 3 do
    b := Breaker.observe !b ~now:i ~ok:true ~latency:50
  done;
  Alcotest.(check string)
    "slow successes open the breaker" "open"
    (Breaker.kind_to_string (Breaker.state !b))

(* --- Retry budget: conservation -------------------------------------- *)

let test_budget_conservation_pure =
  Support.qcheck ~count:300 "budget: grants = min(takes, capacity) = spent"
    QCheck2.Gen.(pair (0 -- 20) (0 -- 60))
    (fun (capacity, takes) ->
      let b =
        ref
          (Retry.Budget.create
             (Retry.Budget.config ~capacity ~refill_every:0 ())
             ~now:0)
      in
      let granted = ref 0 in
      for _ = 1 to takes do
        let b', ok = Retry.Budget.take !b ~now:0 in
        b := b';
        if ok then incr granted
      done;
      !granted = min takes capacity && Retry.Budget.spent !b = !granted)

let test_budget_refill () =
  let cfg = Retry.Budget.config ~capacity:2 ~refill_every:10 () in
  let b = ref (Retry.Budget.create cfg ~now:0) in
  let take now =
    let b', ok = Retry.Budget.take !b ~now in
    b := b';
    ok
  in
  Alcotest.(check bool) "first" true (take 0);
  Alcotest.(check bool) "second" true (take 0);
  Alcotest.(check bool) "drained" false (take 0);
  Alcotest.(check bool) "refilled after a period" true (take 10);
  Alcotest.(check int) "spent counts only grants" 3 (Retry.Budget.spent !b);
  Alcotest.(check bool) "capped at capacity" true
    (Retry.Budget.tokens !b ~now:1_000_000 <= 2)

(* Conservation through the pipeline: with always-failing ops, every
   admitted call burns 1 + (granted retries) executions, so the ops
   counter, the stats and the budget must all agree. *)
let test_budget_conservation_svc =
  Support.qcheck ~count:100 "svc: executions = calls + retries; retries <= capacity"
    QCheck2.Gen.(pair (0 -- 40) (1 -- 5))
    (fun (capacity, calls) ->
      let clock, _ = Clock.manual () in
      let execs = ref 0 in
      let boom _ = incr execs; failwith "down" in
      let ops =
        { Svc.insert = (fun _ _ -> boom ()); delete = boom; find = boom }
      in
      let cfg =
        Svc.config ~clock
          ~retry:(Some (Retry.policy ~max_attempts:10 ~base_delay:0 ()))
          ~budget:(Retry.Budget.config ~capacity ~refill_every:0 ())
          ()
      in
      let svc = Svc.create cfg ops in
      for i = 1 to calls do
        ignore (Svc.call svc (Svc.Insert (i, i)))
      done;
      let st = Svc.stats svc in
      st.retries = min capacity (calls * 9)
      && !execs = st.calls + st.retries
      && st.calls = calls && st.served = 0 && st.failed = calls
      && (capacity >= calls * 9 || st.budget_denied > 0))

(* --- Shedding invariant ----------------------------------------------- *)

(* No admitted operation ever starts executing past its deadline — not
   on admission (dead-on-arrival is a rejection, the ops closure is
   never entered) and not on a retry attempt after backoff pushed the
   clock over the line.  The backoff here IS the clock's advance
   function, so retries genuinely consume deadline time. *)
let test_shed_invariant =
  Support.qcheck ~count:150 "no admitted op executes past its deadline"
    QCheck2.Gen.(
      pair (0 -- 1000)
        (list_size (int_bound 40) (pair (int_bound 5) (int_range (-3) 8))))
    (fun (seed, script) ->
      let clock, advance = Clock.manual () in
      let violated = ref false in
      let current_dl = ref Deadline.none in
      let execs = ref 0 in
      let fail_rng = Lf_kernel.Splitmix.create seed in
      let exec () =
        incr execs;
        if Deadline.expired ~now:(Clock.now clock) !current_dl then
          violated := true;
        if Lf_kernel.Splitmix.bool fail_rng then failwith "flaky" else true
      in
      let ops =
        {
          Svc.insert = (fun _ _ -> exec ());
          delete = (fun _ -> exec ());
          find = (fun _ -> exec ());
        }
      in
      let cfg =
        Svc.config ~clock ~seed
          ~retry:(Some (Retry.policy ~max_attempts:4 ~base_delay:3 ~max_delay:12 ()))
          ~budget:(Retry.Budget.config ~capacity:1000 ~refill_every:0 ())
          ~shed:(Some (Shed.config ~max_queue:4 ~est_init:1 ()))
          ~backoff:advance ()
      in
      let svc = Svc.create cfg ops in
      let ok = ref true in
      List.iter
        (fun (adv, off) ->
          advance adv;
          let nowt = Clock.now clock in
          let dl = Deadline.at (max 0 (nowt + off)) in
          current_dl := dl;
          let expired_now = Deadline.expired ~now:nowt dl in
          let before = !execs in
          match Svc.call svc ~deadline:dl (Svc.Insert (nowt land 15, 0)) with
          | Svc.Rejected r ->
              (* A rejection must not have executed anything... *)
              if !execs <> before then ok := false;
              (* ...and dead-on-arrival must be refused as Expired. *)
              if expired_now && r <> Svc.Expired then ok := false
          | Svc.Served _ | Svc.Served_stale _ | Svc.Failed _ ->
              if expired_now then ok := false)
        script;
      !ok && not !violated)

let test_shed_rejects () =
  let clock, _ = Clock.manual () in
  let execs = ref 0 in
  let ops =
    {
      Svc.insert = (fun _ _ -> incr execs; true);
      delete = (fun _ -> incr execs; true);
      find = (fun _ -> incr execs; true);
    }
  in
  let cfg =
    Svc.config ~clock
      ~shed:(Some (Shed.config ~max_queue:2 ~est_init:1000 ~workers:1 ()))
      ()
  in
  let svc = Svc.create cfg ops in
  Alcotest.check outcome "deep queue is shed"
    (Svc.Rejected Svc.Queue_full)
    (Svc.call svc ~queue_depth:5 (Svc.Find 1));
  Alcotest.check outcome "infeasible deadline is doomed"
    (Svc.Rejected Svc.Doomed)
    (Svc.call svc ~deadline:(Deadline.at 10) ~queue_depth:0 (Svc.Find 1));
  Alcotest.(check int) "neither executed" 0 !execs;
  let st = Svc.stats svc in
  Alcotest.(check int) "both counted as calls" 2 st.calls;
  Alcotest.(check (list (pair string int)))
    "rejections itemized by reason"
    [ ("expired", 0); ("queue-full", 1); ("doomed", 1); ("breaker-open", 0);
      ("write-degraded", 0) ]
    st.rejected

(* --- Degraded modes through the pipeline ------------------------------ *)

let test_breaker_through_svc () =
  let clock, advance = Clock.manual () in
  let failing = ref true in
  let fallback_hits = ref 0 in
  let maybe_boom () = if !failing then failwith "boom" else true in
  let primary =
    {
      Svc.insert = (fun _ _ -> maybe_boom ());
      delete = (fun _ -> maybe_boom ());
      find = (fun _ -> true);
    }
  in
  let fallback =
    {
      Svc.insert = (fun _ _ -> incr fallback_hits; true);
      delete = (fun _ -> incr fallback_hits; true);
      find = (fun _ -> incr fallback_hits; true);
    }
  in
  let cfg =
    Svc.config ~clock ~seed:7
      ~breaker:
        (Some
           (Breaker.config ~window:1000 ~min_calls:3 ~failure_pct:50
              ~open_for:50 ~probes:2 ()))
      ~log_decisions:true ()
  in
  let svc = Svc.create ~fallback cfg primary in
  (* Three failed writes trip the breaker. *)
  for i = 1 to 3 do
    advance 1;
    ignore (Svc.call svc (Svc.Insert (i, i)))
  done;
  let st = Svc.stats svc in
  Alcotest.(check (option string)) "breaker open" (Some "open") st.breaker;
  Alcotest.(check string) "read-only mode" "read-only" st.mode;
  (* Read-only degrade: writes rejected AS rejections, reads served. *)
  Alcotest.check outcome "write refused while open"
    (Svc.Rejected Svc.Write_degraded)
    (Svc.call svc (Svc.Insert (9, 9)));
  Alcotest.check outcome "read served while open" (Svc.Served true)
    (Svc.call svc (Svc.Find 1));
  (* Recovery: cool-down passes, the fault clears, probes go through the
     hints-off fallback (the default half-open mode), and two successes
     close the breaker. *)
  failing := false;
  advance 100;
  Alcotest.check outcome "probe 1 (via fallback)" (Svc.Served true)
    (Svc.call svc (Svc.Insert (10, 10)));
  Alcotest.check outcome "probe 2 (via fallback)" (Svc.Served true)
    (Svc.call svc (Svc.Insert (11, 11)));
  Alcotest.(check bool) "no-hints fallback took the probes" true
    (!fallback_hits = 2);
  let st = Svc.stats svc in
  Alcotest.(check (option string)) "breaker closed" (Some "closed") st.breaker;
  Alcotest.(check (list string))
    "transition trace"
    [ "open"; "half-open"; "closed" ]
    (List.map snd st.transitions);
  Alcotest.(check bool) "degraded serves counted" true
    (st.served_degraded >= 3);
  Alcotest.(check bool) "decision log recorded" true
    (Svc.decision_log svc <> [])

(* --- The coalesced batch path ----------------------------------------- *)

let hashtbl_ops () =
  let h = Hashtbl.create 64 in
  let insert k v =
    if Hashtbl.mem h k then false else (Hashtbl.replace h k v; true)
  in
  let delete k =
    if Hashtbl.mem h k then (Hashtbl.remove h k; true) else false
  in
  let find k = Hashtbl.mem h k in
  ({ Svc.insert; delete; find }, h)

let test_call_many_coalesce () =
  let clock, advance = Clock.manual () in
  let ops, _ = hashtbl_ops () in
  let batch_calls = ref 0 in
  let batched =
    {
      Svc.insert_batch =
        (fun kvs -> incr batch_calls; List.map (fun (k, v) -> ops.Svc.insert k v) kvs);
      delete_batch = (fun ks -> incr batch_calls; List.map ops.Svc.delete ks);
      find_batch = (fun ks -> incr batch_calls; List.map ops.Svc.find ks);
    }
  in
  let cfg = Svc.config ~clock ~coalesce_min:8 () in
  let svc = Svc.create ~batched cfg ops in
  (* Below the threshold: one-by-one through [call]. *)
  let r1 = Svc.call_many svc [ Svc.Find 0; Svc.Insert (1, 1); Svc.Find 1 ] in
  Alcotest.(check int) "short list stays unbatched" 0 !batch_calls;
  Alcotest.(check (list outcome))
    "unbatched results"
    [ Svc.Served false; Svc.Served true; Svc.Served true ]
    r1;
  (* At the threshold: partitioned through the batched entry points,
     results returned in input order. *)
  let reqs =
    [
      Svc.Insert (2, 2); Svc.Insert (3, 3); Svc.Delete 1; Svc.Find 2;
      Svc.Find 9; Svc.Insert (2, 9); Svc.Delete 9; Svc.Find 3;
    ]
  in
  let r2 = Svc.call_many svc reqs in
  Alcotest.(check int) "three kind-batches" 3 !batch_calls;
  Alcotest.(check (list outcome))
    "batched results in input order"
    [
      Svc.Served true; Svc.Served true; Svc.Served true; Svc.Served true;
      Svc.Served false; Svc.Served false; Svc.Served false; Svc.Served true;
    ]
    r2;
  (* Per-element admission still applies on the batched path. *)
  let expired = Deadline.at 0 in
  advance 1;
  let r3 =
    Svc.call_many svc ~deadline:expired
      (List.init 8 (fun i -> Svc.Find i))
  in
  Alcotest.(check (list outcome))
    "expired batch elements rejected, not executed"
    (List.init 8 (fun _ -> Svc.Rejected Svc.Expired))
    r3

(* --- Batch paths report per-key outcomes, never one collapsed error --- *)

let test_call_many_partial_failure () =
  let clock, _ = Clock.manual () in
  let ops, _ = hashtbl_ops () in
  (* Key 13's backend is down; every other key must still get its own
     honest outcome, in input order, one per request. *)
  let poisoned =
    {
      ops with
      Svc.insert =
        (fun k v -> if k = 13 then failwith "shard down" else ops.Svc.insert k v);
      find = (fun k -> if k = 13 then failwith "shard down" else ops.Svc.find k);
    }
  in
  let cfg = Svc.config ~clock ~retryable:(fun _ -> false) () in
  let svc = Svc.create cfg poisoned in
  let reqs =
    [ Svc.Insert (1, 1); Svc.Insert (13, 13); Svc.Insert (2, 2); Svc.Find 13;
      Svc.Find 1 ]
  in
  let out = Svc.call_many svc reqs in
  Alcotest.(check int) "one outcome per request" (List.length reqs)
    (List.length out);
  (match out with
  | [ Svc.Served true; Svc.Failed _; Svc.Served true; Svc.Failed _;
      Svc.Served true ] ->
      ()
  | _ ->
      Alcotest.failf "per-key outcomes wrong or collapsed: [%s]"
        (String.concat "; " (List.map Svc.outcome_to_string out)));
  let st = Svc.stats svc in
  Alcotest.(check int) "no silent drops: calls = requests" (List.length reqs)
    st.calls;
  Alcotest.(check int) "failures counted, not hidden" 2 st.failed

(* --- The wire protocol (pure parse/format) ---------------------------- *)

module Wire = Lf_svc.Wire

let cmd_ok s =
  match Wire.parse s with
  | Ok c -> c
  | Error e -> Alcotest.failf "parse %S: ERR %s" s e

let cmd_err s =
  match Wire.parse s with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  | Error e -> e

let test_wire_batches () =
  (match cmd_ok "MGET 1 2 3" with
  | Wire.Multi [ Svc.Find 1; Svc.Find 2; Svc.Find 3 ] -> ()
  | _ -> Alcotest.fail "MGET parsed wrong");
  (match cmd_ok "mset 1 10 2 20" with
  | Wire.Multi [ Svc.Insert (1, 10); Svc.Insert (2, 20) ] -> ()
  | _ -> Alcotest.fail "MSET parsed wrong");
  (match cmd_ok "KILL 2" with
  | Wire.Kill 2 -> ()
  | _ -> Alcotest.fail "KILL parsed wrong");
  (* A full batch is fine; one more key is refused at the door. *)
  let mget n =
    String.concat " " ("MGET" :: List.init n string_of_int)
  in
  (match cmd_ok (mget Wire.max_batch) with
  | Wire.Multi reqs ->
      Alcotest.(check int) "full batch accepted" Wire.max_batch
        (List.length reqs)
  | _ -> Alcotest.fail "full batch parsed wrong");
  Alcotest.(check string) "oversized batch" "batch too large (max 64)"
    (cmd_err (mget (Wire.max_batch + 1)));
  Alcotest.(check string) "empty MGET" "empty batch" (cmd_err "MGET");
  Alcotest.(check string) "empty MSET" "empty batch" (cmd_err "MSET");
  Alcotest.(check string) "duplicate MGET key" "duplicate key 5"
    (cmd_err "MGET 1 5 3 5");
  Alcotest.(check string) "duplicate MSET key" "duplicate key 7"
    (cmd_err "MSET 7 1 7 2");
  Alcotest.(check string) "odd MSET args" "MSET wants key value pairs"
    (cmd_err "MSET 1 10 2");
  (match Wire.parse "MGET 1 x 3" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric key accepted")

let test_wire_format_multi () =
  Alcotest.(check string) "one token per key, input order"
    "MULTI 4 t f breaker-open failed"
    (Wire.format_multi
       [ Svc.Served true; Svc.Served false; Svc.Rejected Svc.Breaker_open;
         Svc.Failed "boom" ]);
  Alcotest.(check string) "empty outcome list" "MULTI 0 "
    (Wire.format_multi [])

(* The staleness contract on the wire: a replica-served read is always
   an explicit STALE line (single op) or stale:* token (batch) carrying
   its lag — never formatted as a fresh answer. *)
let test_wire_stale_and_heal_verbs () =
  (match cmd_ok "REPLICAS" with
  | Wire.Replicas -> ()
  | _ -> Alcotest.fail "REPLICAS parsed wrong");
  (match cmd_ok "heal" with
  | Wire.Heal -> ()
  | _ -> Alcotest.fail "HEAL parsed wrong");
  ignore (cmd_err "REPLICAS 1");
  ignore (cmd_err "HEAL now");
  Alcotest.(check string) "stale single-op line" "STALE true lag=3"
    (Wire.format_outcome (Svc.Served_stale (true, 3)));
  Alcotest.(check string) "stale miss keeps the tag" "STALE false lag=0"
    (Wire.format_outcome (Svc.Served_stale (false, 0)));
  Alcotest.(check string) "stale batch tokens carry the lag"
    "MULTI 3 stale:t:3 stale:f:0 t"
    (Wire.format_multi
       [ Svc.Served_stale (true, 3); Svc.Served_stale (false, 0);
         Svc.Served true ])

(* --- Chaos through the full pipeline (EXP-18 meets EXP-20) ------------ *)

module K = Lf_kernel.Ordered.Int
module FMem = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem)
module FS = Lf_skiplist.Fr_skiplist.Make (K) (FMem)

(* A stall plan on lane 0 slows the structure under two chaos lanes while
   every operation runs through the Svc pipeline.  The service must keep
   the survivors productive, never raise out of a lane (Crashed is
   absorbed into retries/Failed), and account for every single call:
   served + failed + rejected = calls, with rejections itemized. *)
let test_chaos_through_svc () =
  let t = FS.create () in
  let clock = Clock.real () in
  let rejections = Atomic.make 0 in
  let ms n = Clock.ms clock n in
  let cfg =
    Svc.config ~clock ~seed:5 ~deadline:(ms 50)
      ~retry:(Some (Retry.policy ~max_attempts:3 ~base_delay:(ms 1 / 4) ()))
      ~budget:(Retry.Budget.config ~capacity:200 ~refill_every:(ms 10) ())
      ~breaker:
        (Some
           (Breaker.config ~window:(ms 100) ~min_calls:8 ~failure_pct:50
              ~open_for:(ms 10) ~probes:2 ()))
      ~shed:(Some (Shed.config ~max_queue:64 ~est_init:(ms 1) ()))
      ~retryable:(function Fault.Crashed _ -> true | _ -> false)
      ()
  in
  let svc =
    Svc.create cfg
      {
        Svc.insert = (fun k v -> FS.insert t k v);
        delete = (fun k -> FS.delete t k);
        find = (fun k -> FS.find t k <> None);
      }
  in
  let to_bool = function
    | Svc.Served b | Svc.Served_stale (b, _) -> b
    | Svc.Rejected _ -> Atomic.incr rejections; false
    | Svc.Failed _ -> false
  in
  let plan =
    Fault.make_plan ~seed:23
      [
        { Fault.point = FP.Any_cas; action = Stall 64; mode = Rate (0.05, 2);
          lane = Some 0 };
      ]
  in
  FMem.install plan;
  let report =
    Fun.protect ~finally:FMem.uninstall (fun () ->
        Runner.run_chaos ~window_s:0.1 ~budget_s:1.0 ~name:"svc+stall"
          ~insert:(fun k -> to_bool (Svc.call svc (Svc.Insert (k, k))))
          ~delete:(fun k -> to_bool (Svc.call svc (Svc.Delete k)))
          ~find:(fun k -> to_bool (Svc.call svc (Svc.Find k)))
          ~domains:2 ~key_range:256 ~mix:Opgen.mixed ~seed:5 ())
  in
  let st = Svc.stats svc in
  let total_rejected =
    List.fold_left (fun acc (_, n) -> acc + n) 0 st.rejected
  in
  Alcotest.(check int) "every call accounted for" st.calls
    (st.served + st.failed + total_rejected);
  Alcotest.(check int) "rejections reported, never dropped"
    (Atomic.get rejections) total_rejected;
  Alcotest.(check (list int)) "no lane crashed out" [] report.c_crashed;
  Alcotest.(check bool) "survivors made progress" true
    (report.Runner.c_survivor_ops > 0)

(* --- Decision-log determinism ----------------------------------------- *)

(* The whole admit/reject/retry sequence is a pure function of (seed,
   clock reads): two services built the same way, driven through the
   same script on fresh manual clocks, must produce identical decision
   logs — jittered retry delays included. *)
let run_decisions seed =
  let clock, advance = Clock.manual () in
  let fail_rng = Lf_kernel.Splitmix.create 0xbad5eed in
  let exec () = if Lf_kernel.Splitmix.int fail_rng 3 = 0 then failwith "flaky" else true in
  let ops =
    {
      Svc.insert = (fun _ _ -> exec ());
      delete = (fun _ -> exec ());
      find = (fun _ -> exec ());
    }
  in
  let cfg =
    Svc.config ~clock ~seed
      ~retry:(Some (Retry.policy ~max_attempts:3 ~base_delay:5 ~max_delay:40 ()))
      ~budget:(Retry.Budget.config ~capacity:30 ~refill_every:7 ())
      ~breaker:
        (Some
           (Breaker.config ~window:500 ~min_calls:4 ~failure_pct:50
              ~open_for:20 ~probes:2 ()))
      ~shed:(Some (Shed.config ~max_queue:8 ~est_init:2 ()))
      ~backoff:advance ~log_decisions:true ()
  in
  let svc = Svc.create cfg ops in
  for i = 1 to 60 do
    advance (i mod 4);
    let req =
      match i mod 3 with
      | 0 -> Svc.Insert (i land 31, i)
      | 1 -> Svc.Delete (i land 31)
      | _ -> Svc.Find (i land 31)
    in
    let dl =
      if i mod 5 = 0 then Deadline.at (Clock.now clock + 6) else Deadline.none
    in
    ignore (Svc.call svc ~deadline:dl ~queue_depth:(i mod 10) req)
  done;
  Svc.decision_log svc

let test_decision_determinism =
  Support.qcheck ~count:30 "same seed => same decision log"
    QCheck2.Gen.(0 -- 10_000)
    (fun seed -> run_decisions seed = run_decisions seed)

let () =
  Alcotest.run "svc"
    [
      ( "breaker",
        [
          test_breaker_cycle;
          Alcotest.test_case "latency threshold trips" `Quick
            test_breaker_latency_trips;
        ] );
      ( "budget",
        [
          test_budget_conservation_pure;
          Alcotest.test_case "refill" `Quick test_budget_refill;
          test_budget_conservation_svc;
        ] );
      ( "shedding",
        [
          test_shed_invariant;
          Alcotest.test_case "queue and doomed rejections" `Quick
            test_shed_rejects;
        ] );
      ( "degrade",
        [
          Alcotest.test_case "breaker lifecycle through the pipeline" `Quick
            test_breaker_through_svc;
          Alcotest.test_case "coalesced batches" `Quick test_call_many_coalesce;
          Alcotest.test_case "partial failure: per-key outcomes" `Quick
            test_call_many_partial_failure;
        ] );
      ( "wire",
        [
          Alcotest.test_case "MGET/MSET/KILL parse + malformed batches" `Quick
            test_wire_batches;
          Alcotest.test_case "MULTI formatting" `Quick test_wire_format_multi;
          Alcotest.test_case "STALE tokens + REPLICAS/HEAL verbs" `Quick
            test_wire_stale_and_heal_verbs;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "stall plan through the full pipeline" `Quick
            test_chaos_through_svc;
        ] );
      ( "determinism",
        [ test_decision_determinism ] );
    ]
