(* Unit and property tests for lf_kernel: PRNG, statistics, counters,
   bounded keys, and the workload generators. *)

module SM = Lf_kernel.Splitmix
module Stats = Lf_kernel.Stats
module Counters = Lf_kernel.Counters
module Ev = Lf_kernel.Mem_event

(* --- Splitmix --- *)

let test_splitmix_deterministic () =
  let a = SM.create 42 and b = SM.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (SM.int a 1_000_000) (SM.int b 1_000_000)
  done

let test_splitmix_seed_sensitivity () =
  let a = SM.create 1 and b = SM.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if SM.int a 1_000_000 = SM.int b 1_000_000 then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_splitmix_split_independent () =
  let parent = SM.create 7 in
  let child = SM.split parent in
  (* The child stream should not coincide with the parent's continuation. *)
  let coincide = ref 0 in
  for _ = 1 to 100 do
    if SM.int parent 1_000_000 = SM.int child 1_000_000 then incr coincide
  done;
  Alcotest.(check bool) "split independent" true (!coincide < 5)

let test_splitmix_bounds =
  Support.qcheck "int n stays in [0, n)" QCheck2.Gen.(pair int (1 -- 10000))
    (fun (seed, n) ->
      let rng = SM.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = SM.int rng n in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let test_splitmix_uniformity () =
  let rng = SM.create 2024 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let b = SM.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      if abs (c - (n / 10)) > n / 50 then
        Alcotest.failf "bucket %d count %d too far from %d" i c (n / 10))
    buckets

let test_splitmix_float_range () =
  let rng = SM.create 5 in
  for _ = 1 to 10_000 do
    let f = SM.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float %f out of [0,1)" f
  done

(* --- Stats --- *)

let test_summarize () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 5.0 s.max;
  Alcotest.(check (float 1e-9)) "p50" 3.0 s.p50;
  Alcotest.(check int) "count" 5 s.count

let test_percentile_interpolates () =
  let sorted = [| 0.0; 10.0 |] in
  Alcotest.(check (float 1e-9)) "p50 between" 5.0 (Stats.percentile sorted 0.5)

let test_percentile_empty_raises () =
  Alcotest.check_raises "empty array"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 0.5))

let test_p999_tail () =
  (* 1000 samples 0..999: p999 interpolates just above the 998th. *)
  let s = Stats.summarize (Array.init 1000 float_of_int) in
  Alcotest.(check (float 1e-6)) "p999" 998.001 s.p999;
  Alcotest.(check (float 1e-6)) "p9999" 998.9001 s.p9999;
  Alcotest.(check (float 1e-9)) "p50" 499.5 s.p50

let test_of_weighted () =
  (* (value, count) pairs; percentiles step to the smallest value whose
     cumulative count reaches p * total. *)
  let s = Stats.of_weighted [| (1.0, 2); (5.0, 1); (10.0, 1); (7.0, 0) |] in
  Alcotest.(check int) "count" 4 s.count;
  Alcotest.(check (float 1e-9)) "mean" 4.25 s.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.min;
  Alcotest.(check (float 1e-9)) "max" 10.0 s.max;
  Alcotest.(check (float 1e-9)) "p50 steps" 1.0 s.p50;
  Alcotest.(check (float 1e-9)) "p999 tail" 10.0 s.p999;
  Alcotest.(check (float 1e-9)) "p9999 tail" 10.0 s.p9999;
  (* Zero-count pairs contribute nothing; all-zero input = empty. *)
  let empty = Stats.of_weighted [| (3.0, 0) |] in
  Alcotest.(check int) "empty count" 0 empty.count

let test_linear_fit () =
  let pts = Array.init 20 (fun i -> (float_of_int i, 3.0 +. (2.0 *. float_of_int i))) in
  let a, b, r2 = Stats.linear_fit pts in
  Alcotest.(check (float 1e-6)) "intercept" 3.0 a;
  Alcotest.(check (float 1e-6)) "slope" 2.0 b;
  Alcotest.(check (float 1e-6)) "r2" 1.0 r2

let test_loglog_slope () =
  (* y = 5 * x^2 should fit slope 2. *)
  let pts = Array.init 10 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 5.0 *. (x ** 2.0)))
  in
  let k, r2 = Stats.loglog_slope pts in
  Alcotest.(check (float 1e-6)) "exponent" 2.0 k;
  Alcotest.(check (float 1e-6)) "r2" 1.0 r2

let test_geometric_fit () =
  (* An exact geometric(1/2) histogram fits with tiny total variation. *)
  let h = Array.make 12 0 in
  let total = 1 lsl 11 in
  for i = 1 to 11 do
    h.(i) <- total lsr i
  done;
  let p, tv = Stats.geometric_fit h in
  Alcotest.(check bool) "p near 1/2" true (abs_float (p -. 0.5) < 0.01);
  Alcotest.(check bool) "tv small" true (tv < 0.02)

(* --- Counters --- *)

let test_counters_roundtrip () =
  let c = Counters.create () in
  Counters.record_cas_attempt c Ev.Insertion;
  Counters.record_cas_attempt c Ev.Flagging;
  Counters.record_cas_success c Ev.Insertion;
  Counters.record c Ev.Backlink_step;
  Counters.record c Ev.Next_update;
  Counters.record c Ev.Curr_update;
  Counters.record c Ev.Aux_step;
  Alcotest.(check int) "attempts" 2 (Counters.total_cas_attempts c);
  Alcotest.(check int) "successes" 1 (Counters.total_cas_successes c);
  Alcotest.(check int) "essential" 6 (Counters.essential_steps c);
  let d = Counters.copy c in
  Counters.add_into ~into:d c;
  Alcotest.(check int) "doubled" 12 (Counters.essential_steps d);
  Counters.reset c;
  Alcotest.(check int) "reset" 0 (Counters.essential_steps c)

(* --- Counting memory --- *)

let test_counting_mem_counts () =
  let module L = Lf_list.Fr_list.Counting_int in
  Lf_kernel.Counting_mem.reset_all ();
  let t = L.create () in
  for i = 1 to 50 do
    ignore (L.insert t i i)
  done;
  for i = 1 to 25 do
    ignore (L.delete t (2 * i))
  done;
  let c = Lf_kernel.Counting_mem.grand_total () in
  (* 50 insertion successes, 25 deletions (flag+mark+unlink each). *)
  Alcotest.(check int) "insert successes" 50
    c.Lf_kernel.Counters.cas_successes.(Counters.kind_index Ev.Insertion);
  Alcotest.(check int) "flag successes" 25
    c.Lf_kernel.Counters.cas_successes.(Counters.kind_index Ev.Flagging);
  Alcotest.(check int) "mark successes" 25
    c.Lf_kernel.Counters.cas_successes.(Counters.kind_index Ev.Marking);
  Alcotest.(check bool) "reads counted" true (c.Lf_kernel.Counters.reads > 0);
  Alcotest.(check bool) "essential steps counted" true
    (Counters.essential_steps c > 100);
  Lf_kernel.Counting_mem.reset_all ();
  let c' = Lf_kernel.Counting_mem.grand_total () in
  Alcotest.(check int) "reset" 0 (Counters.essential_steps c')

let test_counting_mem_multidomain () =
  let module L = Lf_list.Fr_list.Counting_int in
  Lf_kernel.Counting_mem.reset_all ();
  let t = L.create () in
  let work did () =
    for i = 1 to 100 do
      ignore (L.insert t ((did * 1000) + i) i)
    done
  in
  let d = Domain.spawn (work 1) in
  work 0 ();
  Domain.join d;
  let c = Lf_kernel.Counting_mem.grand_total () in
  Alcotest.(check int) "all inserts counted across domains" 200
    c.Lf_kernel.Counters.cas_successes.(Counters.kind_index Ev.Insertion);
  Lf_kernel.Counting_mem.reset_all ()

(* --- Bounded keys --- *)

module B = Lf_kernel.Ordered.Bounded (Lf_kernel.Ordered.Int)

let test_bounded_order () =
  let open Lf_kernel.Ordered in
  Alcotest.(check bool) "-inf < 0" true (B.lt Neg_inf (Mid 0));
  Alcotest.(check bool) "0 < +inf" true (B.lt (Mid 0) Pos_inf);
  Alcotest.(check bool) "-inf < +inf" true (B.lt Neg_inf Pos_inf);
  Alcotest.(check bool) "1 < 2" true (B.lt (Mid 1) (Mid 2));
  Alcotest.(check bool) "2 = 2" true (B.equal (Mid 2) (Mid 2));
  Alcotest.(check bool) "+inf not < +inf" false (B.lt Pos_inf Pos_inf);
  Alcotest.(check bool) "+inf <= +inf" true (B.le Pos_inf Pos_inf)

let test_bounded_total =
  Support.qcheck "bounded compare is a total order consistent with Int"
    QCheck2.Gen.(pair small_int small_int)
    (fun (a, b) ->
      let open Lf_kernel.Ordered in
      compare a b = B.compare (Mid a) (Mid b)
      && B.lt Neg_inf (Mid a) && B.lt (Mid a) Pos_inf)

(* --- Workload generators --- *)

let test_keygen_uniform_range () =
  let rng = SM.create 3 in
  let g = Lf_workload.Keygen.uniform 100 in
  for _ = 1 to 1000 do
    let k = Lf_workload.Keygen.draw g rng in
    if k < 0 || k >= 100 then Alcotest.failf "uniform key %d out of range" k
  done

let test_keygen_hotspot_bias () =
  let rng = SM.create 4 in
  let g = Lf_workload.Keygen.hotspot ~range:1000 ~hot:10 ~hot_pct:90 () in
  let hot = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Lf_workload.Keygen.draw g rng < 10 then incr hot
  done;
  (* ~90% + the few uniform draws that land in [0,10). *)
  Alcotest.(check bool) "hotspot bias" true (!hot > (n * 85 / 100))

let test_keygen_zipf_skew () =
  let rng = SM.create 9 in
  let g = Lf_workload.Keygen.zipf ~range:1000 ~theta:0.9 in
  let low = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let k = Lf_workload.Keygen.draw g rng in
    if k < 0 || k >= 1000 then Alcotest.failf "zipf key %d out of range" k;
    if k < 10 then incr low
  done;
  (* Zipf(0.9) puts far more than 1% of mass on the first 10 of 1000 keys. *)
  Alcotest.(check bool) "zipf skew" true (!low > n / 10)

let test_keygen_ascending () =
  let rng = SM.create 1 in
  let g = Lf_workload.Keygen.ascending () in
  let prev = ref (-1) in
  for _ = 1 to 100 do
    let k = Lf_workload.Keygen.draw g rng in
    if k <> !prev + 1 then Alcotest.failf "ascending broke at %d" k;
    prev := k
  done

let test_opgen_ratios () =
  let rng = SM.create 6 in
  let g = Lf_workload.Keygen.uniform 100 in
  let mix = Lf_workload.Opgen.{ insert_pct = 30; delete_pct = 10 } in
  let i = ref 0 and d = ref 0 and f = ref 0 in
  let n = 30_000 in
  for _ = 1 to n do
    match Lf_workload.Opgen.draw mix g rng with
    | Lf_workload.Opgen.Insert _ -> incr i
    | Lf_workload.Opgen.Delete _ -> incr d
    | Lf_workload.Opgen.Find _ -> incr f
  done;
  let near pct got = abs (got - (n * pct / 100)) < n / 50 in
  Alcotest.(check bool) "insert ratio" true (near 30 !i);
  Alcotest.(check bool) "delete ratio" true (near 10 !d);
  Alcotest.(check bool) "find ratio" true (near 60 !f)

let () =
  Alcotest.run "kernel"
    [
      ( "splitmix",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_splitmix_seed_sensitivity;
          Alcotest.test_case "split independent" `Quick
            test_splitmix_split_independent;
          test_splitmix_bounds;
          Alcotest.test_case "uniformity" `Quick test_splitmix_uniformity;
          Alcotest.test_case "float range" `Quick test_splitmix_float_range;
        ] );
      ( "stats",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "percentile" `Quick test_percentile_interpolates;
          Alcotest.test_case "percentile empty raises" `Quick
            test_percentile_empty_raises;
          Alcotest.test_case "p999 tail" `Quick test_p999_tail;
          Alcotest.test_case "of_weighted" `Quick test_of_weighted;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "loglog slope" `Quick test_loglog_slope;
          Alcotest.test_case "geometric fit" `Quick test_geometric_fit;
        ] );
      ( "counters",
        [
          Alcotest.test_case "roundtrip" `Quick test_counters_roundtrip;
          Alcotest.test_case "counting mem" `Quick test_counting_mem_counts;
          Alcotest.test_case "counting mem multidomain" `Quick
            test_counting_mem_multidomain;
        ] );
      ( "bounded keys",
        [
          Alcotest.test_case "order" `Quick test_bounded_order;
          test_bounded_total;
        ] );
      ( "workload generators",
        [
          Alcotest.test_case "uniform range" `Quick test_keygen_uniform_range;
          Alcotest.test_case "hotspot bias" `Quick test_keygen_hotspot_bias;
          Alcotest.test_case "zipf skew" `Quick test_keygen_zipf_skew;
          Alcotest.test_case "ascending" `Quick test_keygen_ascending;
          Alcotest.test_case "op mix ratios" `Quick test_opgen_ratios;
        ] );
    ]
