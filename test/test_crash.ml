(* Lock-freedom under crash failures (the paper's introduction: "delays or
   failures of individual processes do not block the progress of other
   processes in the system").

   The crash-bounded exploration (Explore.run_crash) makes this systematic:
   a crash is a scheduling choice, so the DFS kills the victim process at
   EVERY point of its operation and requires that the survivors complete
   their own operations, that the final structure is valid, and that the
   victim's half-done operation either never took effect or was helped to
   completion.

   A crashed process stops taking steps but any flag/mark it has already
   installed stays behind, which is precisely the state helping must
   recover from. *)

module Sim = Lf_dsim.Sim
module Explore = Lf_dsim.Explore
module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module SLS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module HarrisS = Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

(* Exhaustive single-crash sweep over pid 0 (the designated victim): every
   schedule where the victim dies at some step, plus the crash-free base
   schedule.  Any oracle failure reports the forced-choice prefix that
   reproduces it. *)
let sweep_single_crash ~name mk =
  let out =
    Explore.run_crash ~max_preemptions:0 ~max_crashes:1 ~crashable:[ 0 ]
      ~max_steps:2_000_000 mk
  in
  (match out.Explore.c_failures with
  | [] -> ()
  | (prefix, msg) :: _ ->
      Alcotest.failf "%s: %d/%d crash schedules failed; first: %s [%s]" name
        (List.length out.Explore.c_failures)
        out.Explore.c_schedules_run msg
        (String.concat " " (List.map Explore.choice_to_string prefix)));
  Alcotest.(check bool)
    (name ^ ": sweep not truncated")
    false out.Explore.c_truncated;
  Alcotest.(check bool)
    (name ^ ": swept several crash points")
    true
    (out.Explore.c_schedules_run > 5)

let test_fr_list_deleter_crashes_everywhere () =
  (* Victim deletes 20 from [10;20;30]; survivor then inserts 15 and 25 and
     searches.  Whatever step the victim dies at, the survivor must
     complete, and key 20 must be either present (deletion never reached
     its linearization point) or absent - with the structure always
     traversable and sorted. *)
  sweep_single_crash ~name:"fr-list deleter" (fun () ->
      let t = FRS.create () in
      Sim.quiet (fun () ->
          List.iter (fun k -> ignore (FRS.insert t k 0)) [ 10; 20; 30 ]);
      let bodies =
        [|
          (fun _ -> ignore (FRS.delete t 20));
          (fun _ ->
            ignore (FRS.insert t 15 1);
            ignore (FRS.insert t 25 1);
            ignore (FRS.mem t 30));
        |]
      in
      let oracle ~crashed =
        Sim.quiet (fun () ->
            let l = FRS.to_list t in
            let has k = List.mem_assoc k l in
            if not (has 15 && has 25) then Error "survivor inserts lost"
            else if not (has 10 && has 30) then Error "bystander keys lost"
            else if (not (List.mem 0 crashed)) && has 20 then
              Error "completed deletion left its key behind"
            else FRS.Debug.check_now t)
      in
      (bodies, oracle))

let test_fr_list_inserter_crashes_everywhere () =
  sweep_single_crash ~name:"fr-list inserter" (fun () ->
      let t = FRS.create () in
      Sim.quiet (fun () ->
          List.iter (fun kk -> ignore (FRS.insert t kk 0)) [ 10; 30 ]);
      let bodies =
        [|
          (fun _ -> ignore (FRS.insert t 20 9));
          (fun _ ->
            ignore (FRS.delete t 10);
            ignore (FRS.insert t 5 1);
            ignore (FRS.mem t 20));
        |]
      in
      let oracle ~crashed =
        Sim.quiet (fun () ->
            let l = FRS.to_list t in
            let has k = List.mem_assoc k l in
            if not (has 5) then Error "survivor insert lost"
            else if has 10 then Error "survivor delete lost"
            else if (not (List.mem 0 crashed)) && not (has 20) then
              Error "completed insert lost its key"
            else FRS.Debug.check_now t)
      in
      (bodies, oracle))

(* The critical case: the victim dies holding a FLAG.  Survivors must help
   the deletion through and unflag - the flag can never become a lock. *)
let test_crashed_flag_holder_cannot_block () =
  let t = FRS.create () in
  ignore
    (Sim.run
       [| (fun _ -> List.iter (fun k -> ignore (FRS.insert t k 0)) [ 10; 20 ]) |]);
  let victim _ = ignore (FRS.delete t 20) in
  let survivor _ =
    (* Touches the flagged region directly. *)
    ignore (FRS.insert t 15 1);
    ignore (FRS.delete t 10)
  in
  (* Park the victim (Sim.crash) the moment its TRYFLAG has succeeded. *)
  let policy st =
    if Sim.is_crashed st 0 then
      if not (Sim.is_finished st 1) then Some 1 else None
    else begin
      let c = Sim.counters st 0 in
      if
        c.Lf_kernel.Counters.cas_successes.(Lf_kernel.Counters.kind_index
                                              Lf_kernel.Mem_event.Flagging)
        >= 1
      then begin
        Sim.crash st 0;
        Some 1
      end
      else if Sim.is_finished st 0 then None
      else Some 0
    end
  in
  ignore (Sim.run ~policy:(Sim.Custom policy) [| victim; survivor |]);
  Sim.quiet (fun () ->
      Alcotest.(check (list (pair int int))) "survivor did everything"
        [ (15, 1) ] (FRS.to_list t);
      FRS.check_invariants t)

let test_skiplist_deleter_crashes_everywhere () =
  sweep_single_crash ~name:"fr-skiplist deleter" (fun () ->
      let t = SLS.create_with ~max_level:4 () in
      Sim.quiet (fun () ->
          ignore (SLS.insert_with_height t ~height:3 10 0);
          ignore (SLS.insert_with_height t ~height:4 20 0);
          ignore (SLS.insert_with_height t ~height:2 30 0));
      let bodies =
        [|
          (fun _ -> ignore (SLS.delete t 20));
          (fun _ ->
            ignore (SLS.insert_with_height t ~height:3 15 1);
            ignore (SLS.insert_with_height t ~height:2 25 1);
            ignore (SLS.mem t 30));
        |]
      in
      let oracle ~crashed =
        Sim.quiet (fun () ->
            let l = SLS.to_list t in
            let has k = List.mem_assoc k l in
            if not (has 15 && has 25) then Error "survivor inserts lost"
            else if not (has 10 && has 30) then Error "bystanders lost"
            else if (not (List.mem 0 crashed)) && has 20 then
              Error "completed deletion left its key behind"
            else Ok ())
      in
      (bodies, oracle))

let test_harris_crashes_everywhere () =
  (* Harris is also lock-free; the suite doubles as a baseline sanity
     check. *)
  sweep_single_crash ~name:"harris deleter" (fun () ->
      let t = HarrisS.create () in
      Sim.quiet (fun () ->
          List.iter (fun k -> ignore (HarrisS.insert t k 0)) [ 10; 20; 30 ]);
      let bodies =
        [|
          (fun _ -> ignore (HarrisS.delete t 20));
          (fun _ ->
            ignore (HarrisS.insert t 15 1);
            ignore (HarrisS.insert t 25 1));
        |]
      in
      let oracle ~crashed:_ =
        Sim.quiet (fun () ->
            let l = HarrisS.to_list t in
            if List.mem_assoc 15 l && List.mem_assoc 25 l then Ok ()
            else Error "survivor inserts lost")
      in
      (bodies, oracle))

module FraserS =
  Lf_skiplist.Fraser_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let test_fraser_deleter_crashes_everywhere () =
  sweep_single_crash ~name:"fraser deleter" (fun () ->
      let t = FraserS.create_with ~max_level:4 () in
      Sim.quiet (fun () ->
          ignore (FraserS.insert_with_height t ~height:3 10 0);
          ignore (FraserS.insert_with_height t ~height:4 20 0);
          ignore (FraserS.insert_with_height t ~height:2 30 0));
      let bodies =
        [|
          (fun _ -> ignore (FraserS.delete t 20));
          (fun _ ->
            ignore (FraserS.insert_with_height t ~height:2 15 1);
            ignore (FraserS.insert_with_height t ~height:3 25 1);
            ignore (FraserS.mem t 30));
        |]
      in
      let oracle ~crashed:_ =
        Sim.quiet (fun () ->
            let l = FraserS.to_list t in
            let has k = List.mem_assoc k l in
            if not (has 15 && has 25) then Error "survivor inserts lost"
            else if not (has 10 && has 30) then Error "bystanders lost"
            else Ok ())
      in
      (bodies, oracle))

(* The dictionary fronts built on the FR structures inherit the liveness:
   a crashed deleter in a hash-table bucket or a crashed pop_min cannot
   block the survivors. *)
module HT = Lf_hashtable.Make (Lf_hashtable.Int_key) (Lf_dsim.Sim_mem)

let test_hashtable_deleter_crashes_everywhere () =
  sweep_single_crash ~name:"hashtable deleter" (fun () ->
      (* One bucket, so the victim's residue sits on the survivor's path. *)
      let t = HT.create_with ~buckets:1 () in
      Sim.quiet (fun () ->
          List.iter (fun k -> ignore (HT.insert t k 0)) [ 10; 20; 30 ]);
      let bodies =
        [|
          (fun _ -> ignore (HT.delete t 20));
          (fun _ ->
            ignore (HT.insert t 15 1);
            ignore (HT.insert t 25 1);
            ignore (HT.mem t 30));
        |]
      in
      let oracle ~crashed =
        Sim.quiet (fun () ->
            let has k = HT.mem t k in
            if not (has 15 && has 25) then Error "survivor inserts lost"
            else if not (has 10 && has 30) then Error "bystanders lost"
            else if (not (List.mem 0 crashed)) && has 20 then
              Error "completed deletion left its key behind"
            else Ok ())
      in
      (bodies, oracle))

module PQ = Lf_pqueue.Pqueue.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let test_pqueue_popper_crashes_everywhere () =
  sweep_single_crash ~name:"pqueue popper" (fun () ->
      (* max_level = 1: [push] normally draws tower heights from a global
         coin-flip stream, which Explore replays cannot tolerate; at level
         1 no flips are consumed and the scenario stays deterministic. *)
      let t = PQ.create ~max_level:1 () in
      Sim.quiet (fun () ->
          List.iter (fun k -> ignore (PQ.push t k k)) [ 10; 20; 30 ]);
      let pops = ref [] in
      let bodies =
        [|
          (fun _ -> ignore (PQ.pop_min t));
          (fun _ ->
            ignore (PQ.push t 15 15);
            (match PQ.pop_min t with
            | Some (k, _) -> pops := k :: !pops
            | None -> ());
            match PQ.pop_min t with
            | Some (k, _) -> pops := k :: !pops
            | None -> ());
        |]
      in
      let oracle ~crashed:_ =
        Sim.quiet (fun () ->
            (* 4 elements total (3 prefilled + 1 pushed); the crashed
               popper claims at most one.  The survivor runs after the
               crash, so its two pops must both succeed, in increasing
               priority order, and conservation must hold. *)
            let claimed = List.rev !pops in
            let remaining = PQ.length t in
            match claimed with
            | [ a; b ] when a >= b -> Error "survivor pops out of order"
            | [ _; _ ] ->
                if remaining < 1 || remaining > 2 then
                  Error
                    (Printf.sprintf "conservation: %d left after 2 pops"
                       remaining)
                else Ok ()
            | _ -> Error "survivor pops ran dry")
      in
      (bodies, oracle))

(* Random crash storms: several victims die at random points mid-operation
   (via Sim.crash from on_step) while survivors keep going; the physical
   chain stays healthy. *)
let test_random_crash_storm () =
  List.iter
    (fun seed ->
      let t = FRS.create () in
      let body pid =
        let rng = Lf_kernel.Splitmix.create (seed + pid) in
        for _ = 1 to 20 do
          let k = Lf_kernel.Splitmix.int rng 16 in
          if Lf_kernel.Splitmix.bool rng then ignore (FRS.insert t k pid)
          else ignore (FRS.delete t k)
        done
      in
      let rng = Lf_kernel.Splitmix.create (seed * 31) in
      let kill_at = Array.init 2 (fun _ -> 30 + Lf_kernel.Splitmix.int rng 200) in
      (* pids 0,1 are victims crashed after kill_at.(pid) steps; 2,3 run to
         completion under the seeded random policy. *)
      let on_step st pid =
        if pid < 2 && (not (Sim.is_crashed st pid)) then begin
          let c = Sim.counters st pid in
          let steps =
            c.Lf_kernel.Counters.reads + c.Lf_kernel.Counters.writes
            + Lf_kernel.Counters.total_cas_attempts c
          in
          if steps >= kill_at.(pid) then Sim.crash st pid
        end
      in
      ignore (Sim.run ~policy:(Sim.Random seed) ~on_step (Array.make 4 body));
      Sim.quiet (fun () ->
          match FRS.Debug.check_now t with
          | Ok () -> ()
          | Error m -> Alcotest.failf "storm seed %d: %s" seed m))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let () =
  Alcotest.run "crash"
    [
      ( "fr-list",
        [
          Alcotest.test_case "deleter dies at every step" `Quick
            test_fr_list_deleter_crashes_everywhere;
          Alcotest.test_case "inserter dies at every step" `Quick
            test_fr_list_inserter_crashes_everywhere;
          Alcotest.test_case "crashed flag holder" `Quick
            test_crashed_flag_holder_cannot_block;
        ] );
      ( "fr-skiplist",
        [
          Alcotest.test_case "deleter dies at every step" `Quick
            test_skiplist_deleter_crashes_everywhere;
        ] );
      ( "fronts",
        [
          Alcotest.test_case "hashtable deleter dies at every step" `Quick
            test_hashtable_deleter_crashes_everywhere;
          Alcotest.test_case "pqueue popper dies at every step" `Quick
            test_pqueue_popper_crashes_everywhere;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "harris deleter dies at every step" `Quick
            test_harris_crashes_everywhere;
          Alcotest.test_case "fraser deleter dies at every step" `Quick
            test_fraser_deleter_crashes_everywhere;
        ] );
      ( "storm",
        [ Alcotest.test_case "random crash storms" `Quick test_random_crash_storm ] );
    ]
