(* The fault-injection machinery itself: plan determinism and replay,
   crash-point coverage, Fault_mem semantics (spurious C&S failures that
   never reach the wrapped memory, crashes in the TRYFLAG->TRYMARK window,
   stalls), crash residue classification, crashed-operation
   linearizability, and the negative tests proving the starvation
   watchdogs detect non-lock-freedom by name. *)

module Fault = Lf_fault.Fault
module FP = Lf_kernel.Fault_point
module ME = Lf_kernel.Mem_event
module Sim = Lf_dsim.Sim
module SimFM = Lf_fault.Fault_mem.Make (Lf_dsim.Sim_mem)
module SimFL = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (SimFM)

(* --- Plan determinism ------------------------------------------------ *)

let points =
  [|
    FP.Any;
    FP.Read;
    FP.Write;
    FP.Any_cas;
    FP.Cas ME.Flagging;
    FP.Cas ME.Marking;
    FP.After_cas_ok ME.Flagging;
    FP.After_cas_ok ME.Insertion;
  |]

(* The promise of Fault: the faults a lane observes depend only on (plan
   seed, that lane's access sequence).  Drive two independent executions of
   the same plan with an identical synthetic access stream; the injected
   traces must match event for event. *)
let test_plan_determinism =
  Support.qcheck ~count:100 "same seed + same accesses => same faults"
    QCheck2.Gen.(triple (0 -- 1000) (0 -- 1000) (0 -- 7))
    (fun (pseed, dseed, pi) ->
      let plan =
        Fault.make_plan ~seed:pseed
          [
            Fault.spurious ~p:0.25 ~burst:2 points.(pi);
            { Fault.point = FP.Any; action = Stall 2; mode = At 7; lane = Some 1 };
          ]
      in
      let run () =
        let e = Fault.start plan in
        let rng = Lf_kernel.Splitmix.create dseed in
        for _ = 1 to 120 do
          let lane = Lf_kernel.Splitmix.int rng 3 in
          let access =
            match Lf_kernel.Splitmix.int rng 4 with
            | 0 -> FP.A_read
            | 1 -> FP.A_write
            | 2 -> FP.A_cas ME.Flagging
            | _ -> FP.A_cas ME.Insertion
          in
          ignore (Fault.on_access e ~lane access);
          match access with
          | FP.A_cas k ->
              Fault.note_cas_result e ~lane k (Lf_kernel.Splitmix.bool rng)
          | _ -> ()
        done;
        List.map Fault.injected_to_string (Fault.trace e)
      in
      run () = run ())

let test_plan_string_roundtrip =
  Support.qcheck ~count:100 "plan round-trips through its string"
    QCheck2.Gen.(pair (0 -- 1000) (0 -- 7))
    (fun (seed, pi) ->
      let plan =
        Fault.make_plan ~seed
          [
            Fault.spurious ~p:0.25 ~burst:3 points.(pi);
            Fault.crash_at ~lane:2 4 points.(pi);
            Fault.stall_at ~spins:16 2 points.(pi);
          ]
      in
      Fault.plan_of_string (Fault.plan_to_string plan) = Ok plan)

(* --- Crash-point coverage -------------------------------------------- *)

(* [crash_at k Any] for k = 1, 2, ... walks the crash point across every
   shared access of the operation: each k up to the operation's length
   injects exactly one crash, and the first k past the end injects
   nothing.  This is the exhaustiveness Explore's crash mode relies on. *)
let test_crash_point_coverage () =
  let rec go k covered =
    let t = SimFL.create () in
    Sim.quiet (fun () ->
        List.iter (fun key -> ignore (SimFL.insert t key 0)) [ 10; 20; 30 ]);
    SimFM.install (Fault.make_plan ~seed:1 [ Fault.crash_at k FP.Any ]);
    let crashed = ref false in
    ignore
      (Sim.run
         [|
           (fun _ ->
             try ignore (SimFL.delete t 20)
             with Fault.Crashed _ -> crashed := true);
         |]);
    let injected = List.length (SimFM.injected ()) in
    SimFM.uninstall ();
    if !crashed then begin
      Alcotest.(check int) (Printf.sprintf "k=%d: one injection" k) 1 injected;
      go (k + 1) (covered + 1)
    end
    else begin
      Alcotest.(check int) "past the end: no injection" 0 injected;
      covered
    end
  in
  let covered = go 1 0 in
  Alcotest.(check bool)
    (Printf.sprintf "covered %d crash points" covered)
    true (covered > 5)

(* --- Fault_mem semantics --------------------------------------------- *)

module CFM = Lf_fault.Fault_mem.Make (Lf_kernel.Counting_mem)

let test_spurious_skips_inner_cas () =
  let r = CFM.make 0 in
  Lf_kernel.Counting_mem.reset_all ();
  CFM.install (Fault.make_plan ~seed:2 [ Fault.spurious FP.Any_cas ]);
  let ok = CFM.cas r ~kind:ME.Other_cas ~expect:0 1 in
  let inner =
    Lf_kernel.Counters.total_cas_attempts (Lf_kernel.Counting_mem.grand_total ())
  in
  let injected = List.length (CFM.injected ()) in
  CFM.uninstall ();
  Alcotest.(check bool) "C&S reported failed" false ok;
  Alcotest.(check int) "value untouched" 0 (CFM.get r);
  Alcotest.(check int) "wrapped memory never saw the attempt" 0 inner;
  Alcotest.(check int) "one injection recorded" 1 injected;
  Alcotest.(check bool) "succeeds once uninstalled" true
    (CFM.cas r ~kind:ME.Other_cas ~expect:0 1)

module AFM = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem)

let test_stall_delays_then_proceeds () =
  let r = AFM.make 41 in
  AFM.install (Fault.make_plan ~seed:4 [ Fault.stall_at ~spins:8 1 FP.Read ]);
  let v = AFM.get r in
  let tr = AFM.injected () in
  AFM.uninstall ();
  Alcotest.(check int) "read still returns the value" 41 v;
  match tr with
  | [ i ] -> (
      match i.Fault.i_action with
      | Fault.Stall n -> Alcotest.(check int) "stall rounds" 8 n
      | a -> Alcotest.failf "expected a stall, got %s" (Fault.action_name a))
  | l -> Alcotest.failf "expected one injection, got %d" (List.length l)

(* Crash in the TRYFLAG->TRYMARK window: the flag is published, the mark is
   not, and the key is still logically present.  Helpers then complete the
   orphaned deletion. *)
let test_crash_between_flag_and_mark () =
  let t = SimFL.create () in
  Sim.quiet (fun () ->
      List.iter (fun key -> ignore (SimFL.insert t key 0)) [ 10; 20; 30 ]);
  SimFM.install
    (Fault.make_plan ~seed:3 [ Fault.crash_at 1 (FP.After_cas_ok ME.Flagging) ]);
  let crashed = ref false in
  ignore
    (Sim.run
       [|
         (fun _ ->
           try ignore (SimFL.delete t 20)
           with Fault.Crashed _ -> crashed := true);
       |]);
  let injected = SimFM.injected () in
  SimFM.uninstall ();
  Alcotest.(check bool) "victim crashed" true !crashed;
  (match injected with
  | [ i ] -> (
      match i.Fault.i_action with
      | Fault.Crash -> ()
      | a -> Alcotest.failf "expected a crash, got %s" (Fault.action_name a))
  | l -> Alcotest.failf "expected one injection, got %d" (List.length l));
  Sim.quiet (fun () ->
      Alcotest.(check bool) "key still logically present (no mark yet)" true
        (SimFL.mem t 20);
      (* Strict quiescent validation must reject the orphaned flag... *)
      try
        SimFL.check_invariants t;
        Alcotest.fail "check_invariants accepted a flagged node at quiescence"
      with Failure _ -> ());
  (* ...and any survivor touching the region helps the deletion through. *)
  ignore (Sim.run [| (fun _ -> ignore (SimFL.delete t 20)) |]);
  Sim.quiet (fun () ->
      Alcotest.(check bool) "helped deletion completed" false (SimFL.mem t 20);
      SimFL.check_invariants t)

(* --- Crash residue under the protocol sanitizer ---------------------- *)

module CheckM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem)
module FCheckM = Lf_fault.Fault_mem.Make (CheckM)
module CheckL = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (FCheckM)

let test_crash_residue_classified () =
  CheckM.reset ();
  let t = CheckL.create () in
  Sim.quiet (fun () ->
      List.iter (fun key -> ignore (CheckL.insert t key 0)) [ 10; 20; 30 ]);
  FCheckM.install
    (Fault.make_plan ~seed:5 [ Fault.crash_at 1 (FP.After_cas_ok ME.Flagging) ]);
  ignore
    (Sim.run
       [| (fun _ -> try ignore (CheckL.delete t 20) with Fault.Crashed _ -> ()) |]);
  FCheckM.uninstall ();
  Sim.quiet (fun () ->
      (match CheckM.check_crash_residue () with
      | Ok () -> ()
      | Error m -> Alcotest.failf "residue not crash-explainable: %s" m);
      let res = CheckM.residue () in
      (match res.CheckM.r_flagged with
      | [ (_, window) ] ->
          Alcotest.(check string) "died in the flag window" "tryflag->trymark"
            window
      | l -> Alcotest.failf "expected one flagged cell, got %d" (List.length l));
      Alcotest.(check int) "no marked cell yet" 0
        (List.length res.CheckM.r_marked));
  (* A survivor recovers the orphan; the residue disappears. *)
  ignore (Sim.run [| (fun _ -> ignore (CheckL.delete t 20)) |]);
  Sim.quiet (fun () ->
      let res = CheckM.residue () in
      Alcotest.(check int) "residue cleaned up by helping" 0
        (List.length res.CheckM.r_flagged + List.length res.CheckM.r_marked))

(* --- Negative tests: the watchdogs detect non-lock-freedom ----------- *)

(* A crashed flag holder plus the [No_help] mutant: operations stuck
   behind the orphaned flag spin forever, which the simulator watchdog
   must diagnose (and park) rather than run the scheduler endlessly.  The
   same scenario with helping enabled must pass clean — that contrast is
   the point. *)
let chaos_sim_once ~mutation ~seed =
  let t = SimFL.create_with ?mutation ~use_flags:true () in
  Sim.quiet (fun () ->
      for k = 0 to 7 do
        ignore (SimFL.insert t k k)
      done);
  SimFM.install
    (Fault.make_plan ~seed:31
       [ Fault.crash_at ~lane:0 1 (FP.After_cas_ok ME.Flagging) ]);
  let report =
    Lf_workload.Sim_driver.run_chaos_sim ~policy:(Sim.Random seed)
      ~initial_size:8 ~step_budget:1_500
      ~injected:(fun () -> List.length (SimFM.injected ()))
      ~procs:3 ~ops_per_proc:30 ~key_range:8
      ~mix:{ insert_pct = 20; delete_pct = 60 }
      ~seed
      {
        insert = (fun k -> SimFL.insert t k k);
        delete = (fun k -> SimFL.delete t k);
        find = (fun k -> SimFL.mem t k);
      }
  in
  SimFM.uninstall ();
  report

let test_no_help_mutant_starves () =
  let r = chaos_sim_once ~mutation:(Some SimFL.No_help) ~seed:11 in
  Alcotest.(check bool) "crash was injected" true
    (r.Lf_workload.Sim_driver.sc_injected > 0);
  Alcotest.(check (list int)) "lane 0 crashed" [ 0 ] r.sc_crashed;
  Alcotest.(check bool) "watchdog tripped on the No_help mutant" true
    r.sc_watchdog_tripped

let test_helping_passes_same_scenario () =
  let r = chaos_sim_once ~mutation:None ~seed:11 in
  Alcotest.(check bool) "crash was injected" true
    (r.Lf_workload.Sim_driver.sc_injected > 0);
  Alcotest.(check (list int)) "lane 0 crashed" [ 0 ] r.sc_crashed;
  Alcotest.(check bool) "no starvation with helping" false r.sc_watchdog_tripped;
  Array.iteri
    (fun pid n ->
      if not (List.mem pid r.sc_crashed) then
        Alcotest.(check int)
          (Printf.sprintf "pid %d completed all ops" pid)
          30 n)
    r.sc_completed

(* Real domains: a lock holder stalled past the budget starves every
   lock-based operation — the watchdog must name it.  The same stalled
   domain under the lock-free list bothers nobody. *)
module CoarseI = Lf_baselines.Coarse_list.Int
module LazyI = Lf_baselines.Lazy_list.Int

let run_chaos_with ~name ~insert ~delete ~find ~victims ~mix =
  Lf_workload.Runner.run_chaos ~victims ~budget_s:0.03 ~window_s:0.12 ~name
    ~insert ~delete ~find ~domains:3 ~key_range:16 ~mix ~seed:5 ()

let test_coarse_lock_holder_starves () =
  let t = CoarseI.create () in
  let r =
    run_chaos_with ~name:"coarse-list"
      ~insert:(fun k -> CoarseI.insert t k k)
      ~delete:(fun k -> CoarseI.delete t k)
      ~find:(fun k -> CoarseI.mem t k)
      ~victims:
        [ (0, fun () -> CoarseI.with_lock_held t (fun () -> Unix.sleepf 0.2)) ]
      ~mix:{ insert_pct = 30; delete_pct = 30 }
  in
  Alcotest.(check bool) "watchdog tripped on held global lock" true
    r.Lf_workload.Runner.c_watchdog_tripped

let test_lazy_head_lock_starves () =
  let t = LazyI.create () in
  let r =
    run_chaos_with ~name:"lazy-list"
      ~insert:(fun k -> LazyI.insert t k k)
      ~delete:(fun k -> LazyI.delete t k)
      ~find:(fun k -> LazyI.mem t k)
      ~victims:
        [ (0, fun () -> LazyI.with_head_locked t (fun () -> Unix.sleepf 0.2)) ]
      ~mix:{ insert_pct = 45; delete_pct = 45 }
  in
  Alcotest.(check bool) "watchdog tripped on held head lock" true
    r.Lf_workload.Runner.c_watchdog_tripped

module AFL = Lf_list.Fr_list.Atomic_int

let test_fr_stalled_domain_is_harmless () =
  let t = AFL.create () in
  let r =
    run_chaos_with ~name:"fr-list"
      ~insert:(fun k -> AFL.insert t k k)
      ~delete:(fun k -> AFL.delete t k)
      ~find:(fun k -> AFL.mem t k)
      ~victims:[ (0, fun () -> Unix.sleepf 0.2) ]
      ~mix:{ insert_pct = 30; delete_pct = 30 }
  in
  Alcotest.(check bool) "no starvation: stalled domain holds nothing" false
    r.Lf_workload.Runner.c_watchdog_tripped;
  Alcotest.(check bool) "survivors made progress" true (r.c_survivor_ops > 0)

(* --- Crashed operations in the linearizability checker --------------- *)

module AFLf = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (AFM)

(* An injected crash leaves one pending operation; the history must
   linearize under SOME resolution of it (never-happened / succeeded /
   failed).  Whether the crash fires is a race against real domains, so
   scan a few seeds until one does. *)
let test_pending_crashed_op_linearizes () =
  let rec attempt seed =
    if seed > 20 then
      Alcotest.fail "no seed produced an injected crash in 20 attempts"
    else begin
      let t = AFLf.create () in
      AFM.install
        (Fault.make_plan ~seed:7
           [ Fault.crash_at ~lane:0 1 (FP.After_cas_ok ME.Insertion) ]);
      let hist, pending =
        Lf_workload.Runner.run_chaos_recorded
          ~insert:(fun k -> AFLf.insert t k k)
          ~delete:(fun k -> AFLf.delete t k)
          ~find:(fun k -> AFLf.mem t k)
          ~domains:2 ~ops_per_domain:8 ~key_range:16
          ~mix:{ insert_pct = 70; delete_pct = 15 }
          ~seed ()
      in
      AFM.uninstall ();
      match pending with
      | [] -> attempt (seed + 1)
      | _ :: _ ->
          Alcotest.(check int) "one pending operation" 1 (List.length pending);
          Alcotest.(check bool) "some resolution linearizes" true
            (Lf_workload.Runner.linearizable_with_pending hist pending)
    end
  in
  attempt 1

let () =
  Alcotest.run "fault"
    [
      ( "plans",
        [
          test_plan_determinism;
          test_plan_string_roundtrip;
          Alcotest.test_case "crash-point coverage" `Quick
            test_crash_point_coverage;
        ] );
      ( "fault-mem",
        [
          Alcotest.test_case "spurious C&S skips wrapped memory" `Quick
            test_spurious_skips_inner_cas;
          Alcotest.test_case "stall delays then proceeds" `Quick
            test_stall_delays_then_proceeds;
          Alcotest.test_case "crash between TRYFLAG and TRYMARK" `Quick
            test_crash_between_flag_and_mark;
        ] );
      ( "residue",
        [
          Alcotest.test_case "crash residue classified and recovered" `Quick
            test_crash_residue_classified;
        ] );
      ( "watchdogs",
        [
          Alcotest.test_case "No_help mutant starves (sim)" `Quick
            test_no_help_mutant_starves;
          Alcotest.test_case "helping passes the same scenario (sim)" `Quick
            test_helping_passes_same_scenario;
          Alcotest.test_case "coarse lock holder starves (domains)" `Quick
            test_coarse_lock_holder_starves;
          Alcotest.test_case "lazy head lock starves (domains)" `Quick
            test_lazy_head_lock_starves;
          Alcotest.test_case "FR stalled domain is harmless (domains)" `Quick
            test_fr_stalled_domain_is_harmless;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "crashed op linearizes under some resolution"
            `Quick test_pending_crashed_op_linearizes;
        ] );
    ]
