(* Tests for the hint layer (Lf_kernel.Hint, per-domain predecessor caches)
   and for the hinted + batched entry points of the structures:

   - unit tests of the cache itself (slot per domain, counter totals);
   - deterministic simulator runs exercising hit/stale accounting on the
     list and the skip list;
   - bounded-exhaustive Explore scenarios where a concurrent delete flags,
     marks and unlinks the hinted node in every <=2-preemption window
     around the hinted search, under the Check_mem protocol sanitizer with
     a linearizability oracle;
   - qcheck oracle tests for the batched operations and for hints-on /
     hints-off agreement;
   - multi-domain batch stress under lf_lin (batch elements share the
     batch-wide invocation/return window, sound for the interval-precedence
     checker) and under Check_mem. *)

module Sim = Lf_dsim.Sim
module Hint = Lf_kernel.Hint.Make (Lf_kernel.Atomic_mem)

(* ------------------------------------------------------------------ *)
(* Unit: the cache itself.                                             *)

let test_slot_roundtrip () =
  let h : int Hint.t = Hint.create () in
  Alcotest.(check (option int)) "initially empty" None (Hint.load h);
  Hint.store h 42;
  Alcotest.(check (option int)) "stored" (Some 42) (Hint.load h);
  Hint.store h 7;
  Alcotest.(check (option int)) "overwritten" (Some 7) (Hint.load h);
  Hint.clear h;
  Alcotest.(check (option int)) "cleared" None (Hint.load h);
  let s = Hint.totals h in
  Alcotest.(check int) "stores counted" 2 s.Lf_kernel.Hint.stores

let test_instances_independent () =
  let a : int Hint.t = Hint.create () and b : int Hint.t = Hint.create () in
  Hint.store a 1;
  Alcotest.(check (option int)) "b untouched" None (Hint.load b);
  Hint.note_hit a;
  Hint.note_stale b;
  Hint.note_miss b;
  let sa = Hint.totals a and sb = Hint.totals b in
  Alcotest.(check int) "a hits" 1 sa.Lf_kernel.Hint.hits;
  Alcotest.(check int) "a stale" 0 sa.stale;
  Alcotest.(check int) "b stale" 1 sb.Lf_kernel.Hint.stale;
  Alcotest.(check int) "b misses" 1 sb.misses

let test_domains_isolated_and_summed () =
  let h : int Hint.t = Hint.create () in
  Hint.store h 1;
  Hint.note_hit h;
  let child_saw_empty =
    Domain.join
      (Domain.spawn (fun () ->
           let empty = Hint.load h = None in
           Hint.store h 2;
           Hint.note_hit h;
           Hint.note_stale h;
           empty))
  in
  Alcotest.(check bool) "fresh domain starts empty" true child_saw_empty;
  Alcotest.(check (option int)) "parent slot survives" (Some 1) (Hint.load h);
  let s = Hint.totals h in
  Alcotest.(check int) "summed hits" 2 s.Lf_kernel.Hint.hits;
  Alcotest.(check int) "summed stale" 1 s.stale;
  Alcotest.(check int) "summed stores" 2 s.stores

(* ------------------------------------------------------------------ *)
(* Deterministic simulator runs: accounting on the structures.         *)

module SimList = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module SimSl =
  Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let stats_exn = function
  | Some (s : Lf_kernel.Hint.stats) -> s
  | None -> Alcotest.fail "hints unexpectedly disabled"

let test_list_accounting () =
  let t = SimList.create () in
  let body _pid =
    List.iter (fun k -> ignore (SimList.insert t k k)) [ 10; 20; 30 ];
    (* Repeated searches near the cached predecessor: hits. *)
    assert (SimList.mem t 30);
    assert (SimList.mem t 30);
    assert (SimList.delete t 30);
    (* The delete republished its predecessor; the lookup reuses it. *)
    assert (not (SimList.mem t 30));
    assert (SimList.mem t 20)
  in
  ignore (Sim.run [| body |]);
  let s = stats_exn (SimList.hint_stats t) in
  Alcotest.(check bool) "stores > 0" true (s.Lf_kernel.Hint.stores > 0);
  Alcotest.(check bool) "hits > 0" true (s.hits > 0);
  Alcotest.(check int) "one miss (first op)" 1 s.misses;
  Sim.quiet (fun () ->
      SimList.check_invariants t;
      match SimList.Debug.check_now t with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

let test_list_hints_off_no_stats () =
  let t = SimList.create_with ~use_hints:false ~use_flags:true () in
  let body _pid =
    ignore (SimList.insert t 1 1);
    assert (SimList.mem t 1)
  in
  ignore (Sim.run [| body |]);
  Alcotest.(check bool) "no stats when disabled" true
    (SimList.hint_stats t = None)

let test_skiplist_accounting () =
  let t = SimSl.create_with ~max_level:4 () in
  let body _pid =
    List.iter
      (fun k -> ignore (SimSl.insert_with_height t ~height:((k mod 3) + 1) k k))
      [ 10; 20; 30; 40 ];
    assert (SimSl.mem t 40);
    assert (SimSl.mem t 40);
    assert (SimSl.delete t 40);
    assert (not (SimSl.mem t 40));
    assert (SimSl.mem t 30)
  in
  ignore (Sim.run [| body |]);
  let s = stats_exn (SimSl.hint_stats t) in
  Alcotest.(check bool) "hits > 0" true (s.Lf_kernel.Hint.hits > 0);
  Alcotest.(check bool) "stores > 0" true (s.stores > 0);
  Sim.quiet (fun () -> SimSl.check_invariants t)

(* ------------------------------------------------------------------ *)
(* Bounded-exhaustive staleness: a concurrent delete flags, marks and    *)
(* unlinks the hinted node in every <=2-preemption window around the     *)
(* hinted search.  Runs under the protocol sanitizer; the oracle checks  *)
(* invariants and linearizability of the recorded history.  The hint is  *)
(* seeded before the run, so schedules where the delete has already      *)
(* marked (or unlinked) the hinted node exercise the stale-recovery      *)
(* path, and cumulative stats prove both paths were taken.               *)

(* Invocation tick, run the op, return tick: the ref is incremented at the
   real points of the cooperative schedule, exactly like the explorer's
   dict scenarios. *)
let record entries clock pid op run =
  let inv = !clock in
  incr clock;
  let ok = run () in
  let ret = !clock in
  incr clock;
  entries := { Lf_lin.History.pid; op; ok; inv; ret } :: !entries

let lin_oracle ~initial entries () =
  let h =
    List.sort
      (fun a b -> compare a.Lf_lin.History.inv b.Lf_lin.History.inv)
      !entries
  in
  let init =
    List.fold_left
      (fun s k -> Lf_lin.Checker.IntSet.add k s)
      Lf_lin.Checker.IntSet.empty initial
  in
  match Lf_lin.Checker.check ~init h with
  | Lf_lin.Checker.Linearizable -> Ok ()
  | Lf_lin.Checker.Not_linearizable -> Error "not linearizable"

let explore_list_staleness () =
  let hits = ref 0 and stale = ref 0 in
  let mk () =
    let module CM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem) in
    let module L = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (CM) in
    let t = L.create () in
    Sim.quiet (fun () -> List.iter (fun k -> ignore (L.insert t k k)) [ 1; 3 ]);
    (* Seed the hint at node 3 (the simulator's processes share the one
       real domain, hence one slot). *)
    Sim.quiet (fun () -> ignore (L.mem t 3));
    let clock = ref 0 and entries = ref [] in
    let scripts =
      [|
        (fun () ->
          record entries clock 0 (Lf_lin.History.Find 3) (fun () ->
              L.mem t 3);
          record entries clock 0 (Lf_lin.History.Find 1) (fun () -> L.mem t 1));
        (fun () ->
          record entries clock 1 (Lf_lin.History.Delete 3) (fun () ->
              L.delete t 3));
      |]
    in
    let check () =
      match Sim.quiet (fun () -> L.Debug.check_now t) with
      | Error m -> Error m
      | Ok () -> (
          match Sim.quiet (fun () -> L.check_invariants t) with
          | exception Failure m -> Error m
          | () ->
              let r = lin_oracle ~initial:[ 1; 3 ] entries () in
              (match L.hint_stats t with
              | Some s ->
                  hits := !hits + s.Lf_kernel.Hint.hits;
                  stale := !stale + s.stale
              | None -> ());
              r)
    in
    (Array.map (fun f _pid -> f ()) scripts, check)
  in
  let res = Lf_dsim.Explore.run ~max_preemptions:2 ~max_schedules:40_000 mk in
  (match res.failures with
  | [] -> ()
  | (prefix, msg) :: _ ->
      Alcotest.failf "%s under schedule [%s] (%d schedules)" msg
        (String.concat ";" (List.map string_of_int prefix))
        res.schedules_run);
  Alcotest.(check bool) "explored schedules" true (res.schedules_run > 10);
  Alcotest.(check bool) "hint hit in some schedule" true (!hits > 0);
  Alcotest.(check bool) "stale hint recovered in some schedule" true
    (!stale > 0)

let explore_skiplist_staleness () =
  let hits = ref 0 and stale = ref 0 in
  let mk () =
    let module CM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem) in
    let module S = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (CM) in
    let t = S.create_with ~max_level:3 () in
    Sim.quiet (fun () ->
        ignore (S.insert_with_height t ~height:2 3 3);
        ignore (S.insert_with_height t ~height:1 5 5));
    (* Seed the shared tower path at node 3's tower. *)
    Sim.quiet (fun () -> ignore (S.mem t 3));
    let clock = ref 0 and entries = ref [] in
    let scripts =
      [|
        (fun () ->
          record entries clock 0 (Lf_lin.History.Find 3) (fun () ->
              S.mem t 3);
          record entries clock 0 (Lf_lin.History.Find 5) (fun () -> S.mem t 5));
        (fun () ->
          record entries clock 1 (Lf_lin.History.Delete 3) (fun () ->
              S.delete t 3));
      |]
    in
    let check () =
      match Sim.quiet (fun () -> S.check_invariants t) with
      | exception Failure m -> Error m
      | () ->
          let r = lin_oracle ~initial:[ 3; 5 ] entries () in
          (match S.hint_stats t with
          | Some s ->
              hits := !hits + s.Lf_kernel.Hint.hits;
              stale := !stale + s.stale
          | None -> ());
          r
    in
    (Array.map (fun f _pid -> f ()) scripts, check)
  in
  let res = Lf_dsim.Explore.run ~max_preemptions:2 ~max_schedules:40_000 mk in
  (match res.failures with
  | [] -> ()
  | (prefix, msg) :: _ ->
      Alcotest.failf "%s under schedule [%s] (%d schedules)" msg
        (String.concat ";" (List.map string_of_int prefix))
        res.schedules_run);
  Alcotest.(check bool) "explored schedules" true (res.schedules_run > 10);
  Alcotest.(check bool) "path adopted in some schedule" true (!hits > 0);
  Alcotest.(check bool) "dead path entry rejected in some schedule" true
    (!stale > 0)

(* ------------------------------------------------------------------ *)
(* Batched operations agree with the sequential oracle.  Batches apply  *)
(* same-kind operations in key order with a stable sort, so duplicate   *)
(* keys keep input order and sequential input-order results are the     *)
(* exact expectation.                                                   *)

let batch_oracle_test (module D : Lf_workload.Runner.INT_DICT_BATCHED) =
  Support.qcheck ~count:100
    (Printf.sprintf "%s batches agree with oracle" D.name)
    QCheck2.Gen.(
      list_size (int_bound 8)
        (pair (int_bound 2) (list_size (int_bound 12) (int_bound 15))))
    (fun batches ->
      let t = D.create () in
      let oracle = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (kind, keys) ->
          match kind with
          | 0 ->
              let got = D.insert_batch t (List.map (fun k -> (k, k)) keys) in
              let expected =
                List.map
                  (fun k ->
                    let fresh = not (Hashtbl.mem oracle k) in
                    if fresh then Hashtbl.replace oracle k k;
                    fresh)
                  keys
              in
              if got <> expected then ok := false
          | 1 ->
              let got = D.delete_batch t keys in
              let expected =
                List.map
                  (fun k ->
                    let present = Hashtbl.mem oracle k in
                    Hashtbl.remove oracle k;
                    present)
                  keys
              in
              if got <> expected then ok := false
          | _ ->
              let got = D.mem_batch t keys in
              let expected = List.map (Hashtbl.mem oracle) keys in
              if got <> expected then ok := false)
        batches;
      D.check_invariants t;
      let expected =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle [])
      in
      !ok && D.to_list t = expected)

(* Hints must be invisible in results: the same script on a hints-on and a
   hints-off structure returns identically. *)
let hints_agreement_test name ~mk_on ~mk_off =
  Support.qcheck ~count:100
    (Printf.sprintf "%s: hints on/off agree" name)
    (Support.ops_gen ~key_range:16 ~len:120)
    (fun script ->
      let insert_on, delete_on, find_on = mk_on () in
      let insert_off, delete_off, find_off = mk_off () in
      List.for_all
        (fun (tag, k) ->
          match tag with
          | 0 -> insert_on k = insert_off k
          | 1 -> delete_on k = delete_off k
          | _ -> find_on k = find_off k)
        script)

let list_ops create () =
  let t : int Lf_list.Fr_list.Atomic_int.t = create () in
  ( (fun k -> Lf_list.Fr_list.Atomic_int.insert t k k),
    (fun k -> Lf_list.Fr_list.Atomic_int.delete t k),
    fun k -> Lf_list.Fr_list.Atomic_int.mem t k )

let skiplist_ops create () =
  let t : int Lf_skiplist.Fr_skiplist.Atomic_int.t = create () in
  ( (fun k -> Lf_skiplist.Fr_skiplist.Atomic_int.insert t k k),
    (fun k -> Lf_skiplist.Fr_skiplist.Atomic_int.delete t k),
    fun k -> Lf_skiplist.Fr_skiplist.Atomic_int.mem t k )

(* ------------------------------------------------------------------ *)
(* Priority-queue batches.                                             *)

let test_pqueue_batches () =
  let module Q = Lf_pqueue.Pqueue.Atomic_int in
  let q = Q.create () in
  let results = Q.push_batch q [ (3, "c"); (1, "a"); (2, "b"); (3, "dup") ] in
  Alcotest.(check (list bool))
    "push results in input order"
    [ true; true; true; false ]
    results;
  Alcotest.(check (list (pair int string)))
    "pop_min_batch ascending"
    [ (1, "a"); (2, "b") ]
    (Q.pop_min_batch q 2);
  Alcotest.(check (list (pair int string)))
    "drains and stops" [ (3, "c") ] (Q.pop_min_batch q 5);
  let module SQ = Lf_pqueue.Pqueue.Stamped_atomic in
  let sq = SQ.create () in
  SQ.push_batch sq [ (2, "x"); (1, "y"); (2, "z") ];
  Alcotest.(check (list (pair int string)))
    "stamped: FIFO among equal priorities"
    [ (1, "y"); (2, "x"); (2, "z") ]
    (SQ.pop_min_batch sq 3)

(* ------------------------------------------------------------------ *)
(* Multi-domain batch stress: conservation, linearizability of the      *)
(* batch-windowed history, and the protocol sanitizer.                  *)

let stress_batches (module D : Lf_workload.Runner.INT_DICT_BATCHED) ~domains
    ~batches ~batch ~key_range ~seed () =
  let t = D.create () in
  let clock = Atomic.make 0 in
  let work did =
    let rng = Lf_kernel.Splitmix.create (seed + (131 * did)) in
    let entries = ref [] in
    let balance = ref 0 in
    for _ = 1 to batches do
      let keys =
        List.init batch (fun _ -> Lf_kernel.Splitmix.int rng key_range)
      in
      let kind = Lf_kernel.Splitmix.int rng 3 in
      (* Batch elements share the batch-wide window: invocation before the
         call, return after it.  Sound for the interval-precedence
         linearizability checker (it only uses non-overlap ordering). *)
      let inv = Atomic.fetch_and_add clock 1 in
      let op_results =
        match kind with
        | 0 ->
            List.combine
              (List.map (fun k -> Lf_lin.History.Insert k) keys)
              (D.insert_batch t (List.map (fun k -> (k, k)) keys))
        | 1 ->
            List.combine
              (List.map (fun k -> Lf_lin.History.Delete k) keys)
              (D.delete_batch t keys)
        | _ ->
            List.combine
              (List.map (fun k -> Lf_lin.History.Find k) keys)
              (D.mem_batch t keys)
      in
      let ret = Atomic.fetch_and_add clock 1 in
      List.iter
        (fun (op, ok) ->
          (match (op, ok) with
          | Lf_lin.History.Insert _, true -> incr balance
          | Lf_lin.History.Delete _, true -> decr balance
          | _ -> ());
          entries := { Lf_lin.History.pid = did; op; ok; inv; ret } :: !entries)
        op_results
    done;
    (!entries, !balance)
  in
  let spawned =
    List.init (domains - 1) (fun i -> Domain.spawn (fun () -> work (i + 1)))
  in
  let first = work 0 in
  let per_domain = first :: List.map Domain.join spawned in
  D.check_invariants t;
  let balance = List.fold_left (fun acc (_, b) -> acc + b) 0 per_domain in
  Alcotest.(check int) "conservation: inserts - deletes = length" balance
    (D.length t);
  let h =
    List.concat_map fst per_domain
    |> List.sort (fun a b -> compare a.Lf_lin.History.inv b.Lf_lin.History.inv)
  in
  Support.assert_linearizable h

let test_stress_list () =
  stress_batches
    (module Lf_list.Fr_list.Atomic_int)
    ~domains:3 ~batches:5 ~batch:4 ~key_range:8 ~seed:7 ()

let test_stress_skiplist () =
  stress_batches
    (module Lf_skiplist.Fr_skiplist.Atomic_int)
    ~domains:3 ~batches:5 ~batch:4 ~key_range:8 ~seed:8 ()

let test_stress_hashtable () =
  stress_batches
    (module Lf_hashtable.Atomic_int)
    ~domains:3 ~batches:5 ~batch:4 ~key_range:8 ~seed:9 ()

(* The same stress through the protocol sanitizer: every C&S of every batch
   is validated against the deletion state machine; a violation raises. *)
module Checked_mem = Lf_check.Check_mem.Make (Lf_kernel.Atomic_mem)

module Checked_list = struct
  include Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Checked_mem)

  let name = "fr-list[checked]"
end

module Checked_skiplist = struct
  include Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Checked_mem)

  let name = "fr-skiplist[checked]"
end

let test_stress_list_checked () =
  stress_batches
    (module Checked_list)
    ~domains:2 ~batches:4 ~batch:4 ~key_range:6 ~seed:10 ()

let test_stress_skiplist_checked () =
  stress_batches
    (module Checked_skiplist)
    ~domains:2 ~batches:4 ~batch:4 ~key_range:6 ~seed:11 ()

let () =
  Alcotest.run "hint"
    [
      ( "cache",
        [
          Alcotest.test_case "slot roundtrip" `Quick test_slot_roundtrip;
          Alcotest.test_case "instances independent" `Quick
            test_instances_independent;
          Alcotest.test_case "domains isolated, totals summed" `Quick
            test_domains_isolated_and_summed;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "list hit/miss/store" `Quick test_list_accounting;
          Alcotest.test_case "list hints off" `Quick
            test_list_hints_off_no_stats;
          Alcotest.test_case "skiplist hit/store" `Quick
            test_skiplist_accounting;
        ] );
      ( "staleness (bounded-exhaustive)",
        [
          Alcotest.test_case "list: delete races hinted search" `Slow
            explore_list_staleness;
          Alcotest.test_case "skiplist: delete races hinted search" `Slow
            explore_skiplist_staleness;
        ] );
      ( "batches",
        [
          batch_oracle_test (module Lf_list.Fr_list.Atomic_int);
          batch_oracle_test (module Lf_skiplist.Fr_skiplist.Atomic_int);
          batch_oracle_test (module Lf_hashtable.Atomic_int);
          Alcotest.test_case "pqueue batches" `Quick test_pqueue_batches;
        ] );
      ( "hints transparency",
        [
          hints_agreement_test "fr-list"
            ~mk_on:
              (list_ops (fun () -> Lf_list.Fr_list.Atomic_int.create ()))
            ~mk_off:
              (list_ops (fun () ->
                   Lf_list.Fr_list.Atomic_int.create_with ~use_hints:false
                     ~use_flags:true ()));
          hints_agreement_test "fr-skiplist"
            ~mk_on:
              (skiplist_ops (fun () ->
                   Lf_skiplist.Fr_skiplist.Atomic_int.create ()))
            ~mk_off:
              (skiplist_ops (fun () ->
                   Lf_skiplist.Fr_skiplist.Atomic_int.create_with
                     ~use_hints:false ()));
        ] );
      ( "multi-domain stress",
        [
          Alcotest.test_case "list batches linearizable" `Slow test_stress_list;
          Alcotest.test_case "skiplist batches linearizable" `Slow
            test_stress_skiplist;
          Alcotest.test_case "hashtable batches linearizable" `Slow
            test_stress_hashtable;
          Alcotest.test_case "list batches under Check_mem" `Slow
            test_stress_list_checked;
          Alcotest.test_case "skiplist batches under Check_mem" `Slow
            test_stress_skiplist_checked;
        ] );
    ]
