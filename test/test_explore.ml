(* Tests for the context-bounded systematic explorer, and exhaustive
   bounded-schedule verification of the lock-free structures on small
   scenarios: every schedule with <= 2 preemptions must keep invariants and
   produce a linearizable history. *)

module Sim = Lf_dsim.Sim
module SM = Lf_dsim.Sim_mem
module Explore = Lf_dsim.Explore
module Ev = Lf_kernel.Mem_event

(* --- The explorer itself --- *)

let test_zero_preemptions_single_schedule () =
  let mk () =
    let r = SM.make 0 in
    let body _pid =
      let v = SM.get r in
      ignore (SM.cas r ~kind:Ev.Other_cas ~expect:v (v + 1))
    in
    ([| body; body |], fun () -> Ok ())
  in
  let res = Explore.run ~max_preemptions:0 mk in
  (* Only the choice of the initial process is free; with symmetric bodies
     that is 2 schedules (p0 first or p1 first). *)
  Alcotest.(check bool) "few schedules" true (res.schedules_run <= 3);
  Alcotest.(check int) "no failures" 0 (List.length res.failures)

let test_finds_atomicity_violation () =
  (* Non-atomic increment: read then blind write.  With two processes and
     one preemption, some schedule loses an update. *)
  let mk () =
    let r = SM.make 0 in
    let body _pid =
      for _ = 1 to 2 do
        let v = SM.get r in
        SM.set r (v + 1)
      done
    in
    let check () =
      let v = Sim.quiet (fun () -> SM.get r) in
      if v = 4 then Ok () else Error (Printf.sprintf "lost update: %d" v)
    in
    ([| body; body |], check)
  in
  let res = Explore.run ~max_preemptions:1 mk in
  Alcotest.(check bool) "found the lost update" true
    (List.length res.failures > 0)

let test_cas_increment_safe_under_exploration () =
  (* The CAS-retry version must survive every schedule. *)
  let mk () =
    let r = SM.make 0 in
    let body _pid =
      for _ = 1 to 2 do
        let rec incr_once () =
          let v = SM.get r in
          if not (SM.cas r ~kind:Ev.Other_cas ~expect:v (v + 1)) then
            incr_once ()
        in
        incr_once ()
      done
    in
    let check () =
      let v = Sim.quiet (fun () -> SM.get r) in
      if v = 4 then Ok () else Error (Printf.sprintf "bad count: %d" v)
    in
    ([| body; body |], check)
  in
  let res = Explore.run ~max_preemptions:2 ~max_schedules:50_000 mk in
  Alcotest.(check int) "no failures" 0 (List.length res.failures);
  Alcotest.(check bool) "explored many schedules" true (res.schedules_run > 20)

let test_failure_prefix_reproduces () =
  let mk () =
    let r = SM.make 0 in
    let body _pid =
      let v = SM.get r in
      SM.set r (v + 1)
    in
    let check () =
      let v = Sim.quiet (fun () -> SM.get r) in
      if v = 2 then Ok () else Error "lost"
    in
    ([| body; body |], check)
  in
  let res = Explore.run ~max_preemptions:1 mk in
  match res.failures with
  | [] -> Alcotest.fail "expected a failure"
  | (prefix, _) :: _ ->
      (* Re-running the recorded prefix must reproduce the failure. *)
      let _, verdict =
        Explore.run_one ~max_steps:1000 mk (Array.of_list prefix)
      in
      Alcotest.(check bool) "reproduced" true (Result.is_error verdict)

(* --- Exhaustive bounded-schedule checking of the structures --- *)

(* Build a scenario: [procs] lists of (op, key) scripts over a structure
   prefilled with [initial]; the oracle checks invariants and the
   linearizability of the recorded history. *)
let dict_scenario ~mk_dict ~initial ~scripts () =
  let insert, delete, find, check_inv = mk_dict () in
  Sim.quiet (fun () -> List.iter (fun k -> ignore (insert k)) initial);
  let clock = ref 0 in
  let entries = ref [] in
  let tick () =
    let v = !clock in
    incr clock;
    v
  in
  let body pid =
    List.iter
      (fun (tag, k) ->
        let inv = tick () in
        let hop, ok =
          match tag with
          | `I -> (Lf_lin.History.Insert k, insert k)
          | `D -> (Lf_lin.History.Delete k, delete k)
          | `F -> (Lf_lin.History.Find k, find k)
        in
        let ret = tick () in
        entries := { Lf_lin.History.pid; op = hop; ok; inv; ret } :: !entries)
      (List.nth scripts pid)
  in
  let check () =
    match Sim.quiet check_inv with
    | exception Failure msg -> Error msg
    | () -> (
        let h =
          List.sort
            (fun a b -> compare a.Lf_lin.History.inv b.Lf_lin.History.inv)
            !entries
        in
        let init =
          List.fold_left
            (fun s k -> Lf_lin.Checker.IntSet.add k s)
            Lf_lin.Checker.IntSet.empty initial
        in
        match Lf_lin.Checker.check ~init h with
        | Lf_lin.Checker.Linearizable -> Ok ()
        | Lf_lin.Checker.Not_linearizable -> Error "not linearizable")
  in
  (Array.make (List.length scripts) body, check)

(* The FR structures explore under the protocol sanitizer: every schedule the
   explorer enumerates is also validated against INV 1-5 step by step, and a
   violation surfaces as that schedule's failure (with its reproducing
   prefix).  Each call builds a fresh [Check_mem] instance, so no cross-
   schedule state leaks.  The baselines (Harris, Valois) keep plain [Sim_mem]:
   they do not speak the flag/backlink protocol. *)
let fr_list_dict () =
  let module CM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem) in
  let module L = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (CM) in
  let t = L.create () in
  ( (fun k -> L.insert t k k),
    (fun k -> L.delete t k),
    (fun k -> L.mem t k),
    fun () ->
      L.check_invariants t;
      match L.Debug.check_now t with Ok () -> () | Error m -> failwith m )

let harris_dict () =
  let module L =
    Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
  in
  let t = L.create () in
  ( (fun k -> L.insert t k k),
    (fun k -> L.delete t k),
    (fun k -> L.mem t k),
    fun () -> L.check_invariants t )

let valois_dict () =
  let module L =
    Lf_baselines.Valois_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
  in
  let t = L.create () in
  ( (fun k -> L.insert t k k),
    (fun k -> L.delete t k),
    (fun k -> L.mem t k),
    fun () -> L.check_invariants t )

let skiplist_dict () =
  let module CM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem) in
  let module L = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (CM) in
  let t = L.create_with ~max_level:3 () in
  ( (fun k -> L.insert_with_height t ~height:((k mod 3) + 1) k k),
    (fun k -> L.delete t k),
    (fun k -> L.mem t k),
    fun () -> L.check_invariants t )

let exhaustive name mk_dict scripts =
  Alcotest.test_case name `Slow (fun () ->
      let res =
        Explore.run ~max_preemptions:2 ~max_schedules:40_000
          (dict_scenario ~mk_dict ~initial:[ 1; 3 ] ~scripts)
      in
      (match res.failures with
      | [] -> ()
      | (prefix, msg) :: _ ->
          Alcotest.failf "%s: %s under schedule [%s] (%d schedules)" name msg
            (String.concat ";" (List.map string_of_int prefix))
            res.schedules_run);
      if res.schedules_run < 10 then
        Alcotest.failf "%s: suspiciously few schedules (%d)" name
          res.schedules_run)

(* Randomized scenario generation: qcheck drives the explorer with random
   short scripts; every bounded schedule of every generated scenario must
   be invariant-clean and linearizable. *)
let random_scenarios_prop =
  let tag_of = function 0 -> `I | 1 -> `D | _ -> `F in
  Support.qcheck ~count:40 "random scenarios, all 1-preemption schedules"
    QCheck2.Gen.(
      pair
        (list_size (return 2) (pair (int_bound 2) (int_bound 3)))
        (list_size (return 2) (pair (int_bound 2) (int_bound 3))))
    (fun (s0, s1) ->
      let scripts =
        [
          List.map (fun (t, k) -> (tag_of t, k)) s0;
          List.map (fun (t, k) -> (tag_of t, k)) s1;
        ]
      in
      let res =
        Explore.run ~max_preemptions:1 ~max_schedules:5_000
          (dict_scenario ~mk_dict:fr_list_dict ~initial:[ 1 ] ~scripts)
      in
      res.failures = [])

let conflict_scripts =
  [ [ (`I, 2); (`D, 1) ]; [ (`D, 2); (`I, 1) ] ]

let hotspot_scripts = [ [ (`I, 2); (`D, 2) ]; [ (`D, 2); (`I, 2) ] ]

let mixed_scripts = [ [ (`I, 2); (`F, 3) ]; [ (`D, 3); (`F, 2) ] ]

(* Three processes, one conflicting op each: a wider interleaving space
   (every pair can preempt every other). *)
let three_way_scripts = [ [ (`I, 2) ]; [ (`D, 1) ]; [ (`D, 2) ] ]

let () =
  Alcotest.run "explore"
    [
      ( "engine",
        [
          Alcotest.test_case "zero preemptions" `Quick
            test_zero_preemptions_single_schedule;
          Alcotest.test_case "finds lost update" `Quick
            test_finds_atomicity_violation;
          Alcotest.test_case "cas increment safe" `Quick
            test_cas_increment_safe_under_exploration;
          Alcotest.test_case "failure prefix reproduces" `Quick
            test_failure_prefix_reproduces;
        ] );
      ( "fr-list exhaustive",
        [
          exhaustive "conflict" fr_list_dict conflict_scripts;
          exhaustive "hotspot" fr_list_dict hotspot_scripts;
          exhaustive "mixed" fr_list_dict mixed_scripts;
          exhaustive "three-way" fr_list_dict three_way_scripts;
          random_scenarios_prop;
        ] );
      ( "harris exhaustive",
        [
          exhaustive "conflict" harris_dict conflict_scripts;
          exhaustive "hotspot" harris_dict hotspot_scripts;
        ] );
      ( "valois exhaustive",
        [
          exhaustive "conflict" valois_dict conflict_scripts;
          exhaustive "hotspot" valois_dict hotspot_scripts;
        ] );
      ( "skiplist exhaustive",
        [
          exhaustive "conflict" skiplist_dict conflict_scripts;
          exhaustive "hotspot" skiplist_dict hotspot_scripts;
          exhaustive "mixed" skiplist_dict mixed_scripts;
          exhaustive "three-way" skiplist_dict three_way_scripts;
        ] );
    ]
