(* End-to-end request tracing (lib/obs Span/Slo/Flight, DESIGN.md §14):
   span-tree well-formedness over scripted nestings, id uniqueness
   across domains, byte-identical dumps across two deterministic
   executions (the replay half of EXP-24), exemplar and SLO burn math,
   Chrome-trace output validity, the Off level's zero-allocation
   contract, pipeline decision spans through Svc, hedge/drain tracing
   through the Router, C&S-failure attribution, and the journal's
   seq/tick stamping. *)

module Span = Lf_obs.Span
module Slo = Lf_obs.Slo
module Flight = Lf_obs.Flight
module Svc = Lf_svc.Svc
module Clock = Lf_svc.Clock
module Retry = Lf_svc.Retry
module Breaker = Lf_svc.Breaker
module Degrade = Lf_svc.Degrade
module Hash_ring = Lf_shard.Hash_ring
module Router = Lf_shard.Router
module Health = Lf_shard.Health

let with_spans f =
  Span.reset ();
  Span.set_level Span.Spans;
  Fun.protect ~finally:(fun () -> Span.set_level Span.Off) f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i =
    i + nn <= nh && (String.equal (String.sub hay i nn) needle || at (i + 1))
  in
  at 0

(* --- Tree discipline -------------------------------------------------- *)

(* Any stack-disciplined script of opens/closes/events yields a
   well-formed tree: unique ids, parents present, children nested inside
   their parents' intervals. *)
let test_nesting_well_formed =
  Support.qcheck ~count:150 "span: scripted nestings are well-formed"
    QCheck2.Gen.(list_size (int_bound 60) (int_bound 2))
    (fun script ->
      with_spans @@ fun () ->
      let t = ref 0 in
      let tick () =
        incr t;
        !t
      in
      let root = Span.root ~name:"request" ~now:(tick ()) in
      let stack = ref [ root ] in
      List.iter
        (fun op ->
          match (op, !stack) with
          | 0, top :: _ ->
              stack := Span.begin_ top ~name:"child" ~now:(tick ()) :: !stack
          | 1, top :: (_ :: _ as rest) ->
              Span.end_ top ~now:(tick ()) ~ok:true;
              stack := rest
          | _, top :: _ ->
              if Span.active top then
                Span.event top ~now:(tick ()) (Span.Note "n")
          | _, [] -> assert false)
        script;
      List.iter (fun c -> Span.end_ c ~now:(tick ()) ~ok:true) !stack;
      match Span.trees () with
      | [ tr ] ->
          Span.well_formed tr = Ok ()
          && Span.tree_trace tr = Span.trace_id root
          && (Span.tree_root tr).Span.s_name = "request"
      | _ -> false)

let test_ids_unique_across_domains () =
  with_spans @@ fun () ->
  let work () =
    for i = 1 to 50 do
      let r = Span.root ~name:"r" ~now:i in
      let a = Span.begin_ r ~name:"a" ~now:i in
      let b = Span.begin_ a ~name:"b" ~now:i in
      Span.end_ b ~now:(i + 1) ~ok:true;
      Span.end_ a ~now:(i + 1) ~ok:true;
      Span.end_ r ~now:(i + 2) ~ok:true
    done
  in
  let doms = Array.init 4 (fun _ -> Domain.spawn work) in
  Array.iter Domain.join doms;
  let trees = Span.trees () in
  Alcotest.(check int) "all trees retained" 200 (List.length trees);
  let ids =
    List.concat_map
      (fun tr -> List.map (fun s -> s.Span.s_id) (Span.tree_spans tr))
      trees
  in
  Alcotest.(check int) "no id collisions" (List.length ids)
    (List.length (List.sort_uniq Int.compare ids))

(* --- Deterministic replay: byte-identical dumps ----------------------- *)

(* One scripted run through a real Svc pipeline under a manual clock.
   Everything that feeds the dump — ids, ticks, retry jitter, budget
   refills — is a function of the seed and the script, so two
   executions must serialize identically, byte for byte. *)
let traced_run () =
  Span.reset ();
  Span.set_level Span.Spans;
  let clock, advance = Clock.manual () in
  let fails = ref 2 in
  let ops =
    {
      Svc.insert =
        (fun _ _ ->
          advance 3;
          true);
      delete =
        (fun _ ->
          advance 1;
          true);
      find =
        (fun k ->
          advance 2;
          if !fails > 0 && k = 7 then begin
            decr fails;
            failwith "flaky read"
          end
          else true);
    }
  in
  let cfg =
    Svc.config ~clock ~seed:42
      ~retry:(Some (Retry.policy ~max_attempts:3 ~base_delay:2 ()))
      ()
  in
  let svc = Svc.create cfg ops in
  List.iter
    (fun req ->
      let ctx = Span.root ~name:"request" ~now:(Clock.now clock) in
      let out = Svc.call svc ~ctx req in
      let ok = match out with Svc.Served _ -> true | _ -> false in
      Span.end_ ctx ~now:(Clock.now clock) ~ok;
      advance 1)
    [
      Svc.Insert (1, 1); Svc.Find 7; Svc.Delete 1; Svc.Find 7; Svc.Insert (2, 2);
    ];
  let dump = Flight.dump_string ~reason:"replay" ~meta:[ ("run", "x") ] () in
  let chrome = Flight.chrome_string () in
  Span.set_level Span.Off;
  (dump, chrome)

let test_replay_byte_identical () =
  let d1, c1 = traced_run () in
  let d2, c2 = traced_run () in
  Alcotest.(check string) "dump bundles byte-identical" d1 d2;
  Alcotest.(check string) "chrome traces byte-identical" c1 c2;
  Alcotest.(check bool) "dump carries reason" true
    (contains d1 "\"reason\":\"replay\"");
  Alcotest.(check bool) "dump carries meta" true (contains d1 "\"run\":\"x\"");
  match Lf_obs.Chrome_trace.check c1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "chrome trace invalid: %s" e

(* --- Exemplars and the latency histogram ------------------------------ *)

let test_exemplars () =
  with_spans @@ fun () ->
  let mk lat =
    let r = Span.root ~name:"req" ~now:100 in
    Span.end_ r ~now:(100 + lat) ~ok:true;
    Span.trace_id r
  in
  let t0 = mk 0 in
  let t1 = mk 1 in
  let _t2 = mk 2 in
  let t3 = mk 3 in
  let t5 = mk 5 in
  let t100 = mk 100 in
  let exs = Span.exemplars () in
  Alcotest.(check (list int)) "non-empty buckets, ascending bounds"
    [ 0; 1; 3; 7; 127 ]
    (List.map (fun e -> e.Span.ex_le) exs);
  let find le = List.find (fun e -> e.Span.ex_le = le) exs in
  Alcotest.(check int) "le=3 counts latencies 2 and 3" 2 (find 3).Span.ex_count;
  Alcotest.(check int) "le=3 exemplar is the worst (latency 3)" t3
    (find 3).Span.ex_trace;
  Alcotest.(check int) "worst latency recorded" 3 (find 3).Span.ex_latency;
  Alcotest.(check int) "completion tick recorded" 103 (find 3).Span.ex_tick;
  List.iter
    (fun (le, tr) ->
      Alcotest.(check int)
        (Printf.sprintf "le=%d exemplar trace" le)
        tr
        (find le).Span.ex_trace)
    [ (0, t0); (1, t1); (7, t5); (127, t100) ];
  let sum, count = Span.latency_totals () in
  Alcotest.(check int) "latency sum" 111 sum;
  Alcotest.(check int) "latency count" 6 count;
  (* A later, slower request in the same bucket replaces the exemplar. *)
  let t3b = mk 3 in
  Alcotest.(check int) "worst-recent replacement" t3b
    (let e = List.find (fun e -> e.Span.ex_le = 3) (Span.exemplars ()) in
     e.Span.ex_trace);
  (* The Prometheus snapshot renders them as valid OpenMetrics. *)
  let snap = Lf_obs.Prom.snapshot () in
  Alcotest.(check bool) "snapshot has the latency histogram" true
    (contains snap "lf_latency_bucket");
  Alcotest.(check bool) "snapshot carries trace-id exemplars" true
    (contains snap "# {trace_id=\"");
  match Lf_obs.Prom.validate snap with
  | Ok () -> ()
  | Error e -> Alcotest.failf "snapshot with exemplars invalid: %s" e

let test_prom_exemplar_lines () =
  let ok l = Lf_obs.Prom.validate (l ^ "\n") in
  Alcotest.(check bool) "exemplar line accepted" true
    (ok "lf_latency_bucket{le=\"7\"} 3 # {trace_id=\"12\"} 5" = Ok ());
  Alcotest.(check bool) "exemplar with timestamp accepted" true
    (ok "lf_latency_bucket{le=\"7\"} 3 # {trace_id=\"12\"} 5 1700000000" = Ok ());
  Alcotest.(check bool) "junk after value still rejected" true
    (match ok "lf_latency_bucket{le=\"7\"} 3 # oops" with
    | Error _ -> true
    | Ok () -> false);
  Alcotest.(check bool) "unlabelled exemplar rejected" true
    (match ok "lf_latency_bucket{le=\"7\"} 3 # {trace_id=\"12\"}" with
    | Error _ -> true
    | Ok () -> false)

(* --- SLO burn rates --------------------------------------------------- *)

let test_slo_burn_math () =
  let slo = Slo.create ~target:0.9 ~bucket:10 ~windows:[ 100; 1000 ] () in
  for i = 0 to 9 do
    Slo.observe slo ~now:i ~good:true
  done;
  Alcotest.(check (float 1e-9)) "all good, no burn" 0.0
    (Slo.burn_rate slo ~now:9 ~window:100);
  for i = 10 to 19 do
    Slo.observe slo ~now:i ~good:false
  done;
  (* 10 good / 10 bad over the window: bad ratio 0.5 against a 0.1
     budget — burning five times faster than the budget accrues. *)
  Alcotest.(check (float 1e-9)) "half bad = 5x burn" 5.0
    (Slo.burn_rate slo ~now:19 ~window:100);
  Alcotest.(check bool) "5x is not fast burn" false (Slo.fast_burn slo ~now:19);
  for i = 100 to 199 do
    Slo.observe slo ~now:i ~good:false
  done;
  Alcotest.(check (float 1e-9)) "all bad = 10x burn" 10.0
    (Slo.burn_rate slo ~now:199 ~window:100);
  Alcotest.(check bool) "10x trips fast burn" true (Slo.fast_burn slo ~now:199);
  let line = Slo.line slo ~now:199 in
  Alcotest.(check bool) "line carries target" true (contains line "target=0.9");
  Alcotest.(check bool) "line carries fast_burn" true
    (contains line "fast_burn=true");
  (* The window slides: with no fresh observations the burn decays to 0
     (the long window still remembers). *)
  Alcotest.(check (float 1e-9)) "stale window burns nothing" 0.0
    (Slo.burn_rate slo ~now:400 ~window:100);
  Alcotest.(check bool) "long window still burning" true
    (Slo.burn_rate slo ~now:400 ~window:1000 > 0.0);
  List.iter
    (fun mk -> Alcotest.check_raises "bad config" (Invalid_argument "Slo.create: target must be in (0, 1)") mk)
    [ (fun () -> ignore (Slo.create ~target:1.5 ~bucket:10 ~windows:[ 100 ] ())) ]

(* --- Off level: constant-cost, zero-allocation ------------------------ *)

let test_off_zero_alloc () =
  Span.set_level Span.Off;
  let iters = 10_000 in
  (* The lazy-tick closure is hoisted so the loop body measures only the
     span path itself — the production call sites hold theirs the same
     way (one closure per request, not per op). *)
  let tick = ref 0 in
  let now () = !tick in
  let w0 = Gc.minor_words () in
  for i = 1 to iters do
    tick := i;
    let r = Span.root ~name:"request" ~now:i in
    let c = Span.begin_ r ~name:"child" ~now:i in
    if Span.active c then Span.event c ~now:i (Span.Note "x");
    Span.end_ c ~now:i ~ok:true;
    Span.end_ r ~now:i ~ok:true;
    Span.note_cas_fail ~now Lf_kernel.Mem_event.Marking;
    Span.op_begin ~name:"insert" ~key:i ~now;
    Span.op_end ~ok:true ~now
  done;
  let dw = Gc.minor_words () -. w0 in
  if dw > 64.0 then
    Alcotest.failf "Off span path allocated %.0f words over %d iterations" dw
      iters

(* --- Pipeline decision spans through Svc ------------------------------ *)

let test_svc_decision_spans () =
  with_spans @@ fun () ->
  let clock, advance = Clock.manual () in
  let boom = ref true in
  let ops =
    {
      Svc.insert =
        (fun _ _ ->
          advance 1;
          if !boom then begin
            boom := false;
            failwith "flaky"
          end
          else true);
      delete = (fun _ -> true);
      find = (fun _ -> true);
    }
  in
  let cfg =
    Svc.config ~clock ~seed:7
      ~retry:(Some (Retry.policy ~max_attempts:2 ~base_delay:1 ()))
      ()
  in
  let svc = Svc.create cfg ops in
  let ctx = Span.root ~name:"request" ~now:(Clock.now clock) in
  let out = Svc.call svc ~ctx (Svc.Insert (1, 1)) in
  advance 1;
  Span.end_ ctx ~now:(Clock.now clock) ~ok:true;
  Alcotest.(check bool) "served after one retry" true (out = Svc.Served true);
  let tr =
    match Span.find_trace (Span.trace_id ctx) with
    | Some tr -> tr
    | None -> Alcotest.fail "completed tree not retained"
  in
  (match Span.well_formed tr with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let spans = Span.tree_spans tr in
  let names = List.map (fun s -> s.Span.s_name) spans in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span present") true (List.mem n names))
    [ "request"; "deadline"; "attempt"; "retry-wait" ];
  Alcotest.(check int) "one span per attempt" 2
    (List.length (List.filter (String.equal "attempt") names));
  Alcotest.(check bool) "failed attempt marked not-ok" true
    (List.exists (fun s -> s.Span.s_name = "attempt" && not s.Span.s_ok) spans);
  Alcotest.(check bool) "retry event on the request span" true
    (List.exists
       (fun (_, e) -> match e with Span.Retry_wait _ -> true | _ -> false)
       (Span.span_events (Span.tree_root tr)))

(* --- C&S attribution and structure-op spans --------------------------- *)

let test_cas_attribution () =
  with_spans @@ fun () ->
  let t = ref 0 in
  let tick () =
    incr t;
    !t
  in
  let root = Span.root ~name:"request" ~now:(tick ()) in
  let aspan = Span.begin_ root ~name:"attempt" ~now:(tick ()) in
  Span.with_current aspan (fun () ->
      Span.op_begin ~name:"insert" ~key:7 ~now:tick;
      Span.note_cas_fail ~now:tick Lf_kernel.Mem_event.Flagging;
      Span.op_end ~ok:true ~now:tick);
  Span.end_ aspan ~now:(tick ()) ~ok:true;
  Span.end_ root ~now:(tick ()) ~ok:true;
  let c = Span.counts () in
  Alcotest.(check int) "one C&S failure attributed" 1 c.Span.cas_attributed;
  let tr =
    match Span.find_trace (Span.trace_id root) with
    | Some tr -> tr
    | None -> Alcotest.fail "tree not retained"
  in
  (match Span.well_formed tr with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let op =
    match
      List.filter (fun s -> s.Span.s_name = "insert") (Span.tree_spans tr)
    with
    | [ s ] -> s
    | l -> Alcotest.failf "expected one op span, got %d" (List.length l)
  in
  (match Span.span_events op with
  | [ (_, Span.Key 7); (_, Span.Cas_fail Lf_kernel.Mem_event.Flagging) ] -> ()
  | evs -> Alcotest.failf "unexpected op events (%d)" (List.length evs));
  Alcotest.(check bool) "op span nested under the attempt" true
    (List.exists
       (fun s -> s.Span.s_name = "attempt" && s.Span.s_id = op.Span.s_parent)
       (Span.tree_spans tr))

(* --- Router: hedge spans, drain accounting, journal stamps ------------ *)

type tb = { h : (int, int) Hashtbl.t; w_killed : bool ref }

let table_backend () =
  let tb = { h = Hashtbl.create 32; w_killed = ref false } in
  let guard ~write () = if write && !(tb.w_killed) then failwith "down" in
  let b =
    {
      Router.insert =
        (fun k v ->
          guard ~write:true ();
          if Hashtbl.mem tb.h k then false
          else begin
            Hashtbl.replace tb.h k v;
            true
          end);
      delete =
        (fun k ->
          guard ~write:true ();
          if Hashtbl.mem tb.h k then begin
            Hashtbl.remove tb.h k;
            true
          end
          else false);
      find = (fun k -> guard ~write:false (); Hashtbl.find_opt tb.h k);
      batched = None;
    }
  in
  (tb, b)

let shard_key ring s =
  let rec go k = if Hash_ring.shard_of ring k = s then k else go (k + 1) in
  go 0

let test_router_hedge_spans () =
  with_spans @@ fun () ->
  let clock, _ = Clock.manual () in
  let ring = Hash_ring.create ~seed:3 ~shards:2 () in
  let tbs = Array.init 2 (fun _ -> table_backend ()) in
  let cfg _ =
    Svc.config ~clock
      ~retryable:(fun _ -> false)
      ~breaker:
        (Some
           (Breaker.config ~window:1_000_000 ~min_calls:2 ~failure_pct:50
              ~open_for:1_000_000 ~probes:1 ()))
      ~degrade:
        (Degrade.policy ~on_open:Degrade.Normal ~on_half_open:Degrade.Normal ())
      ()
  in
  let router =
    Router.create ~hedge_reads:true ~ring ~svc_config:cfg (fun i ->
        snd tbs.(i))
  in
  let k = shard_key ring 0 in
  ignore (Router.call router (Svc.Insert (k, 7)));
  (fst tbs.(0)).w_killed := true;
  let rec trip budget =
    if budget = 0 then Alcotest.fail "breaker never opened"
    else
      match Router.call router (Svc.Insert (k, 8)) with
      | Svc.Rejected Svc.Breaker_open -> ()
      | _ -> trip (budget - 1)
  in
  trip 10;
  (* A traced read rejected by the breaker and served by the hedge. *)
  let ctx = Span.root ~name:"request" ~now:(Clock.now clock) in
  let out = Router.call router ~ctx (Svc.Find k) in
  Span.end_ ctx ~now:(Clock.now clock) ~ok:true;
  Alcotest.(check bool) "hedge served the read" true (out = Svc.Served true);
  let attempts, wins = (Router.hedge_stats router).(0) in
  Alcotest.(check bool) "hedge attempt counted" true (attempts >= 1);
  Alcotest.(check int) "hedge win counted" 1 wins;
  let tr =
    match Span.find_trace (Span.trace_id ctx) with
    | Some tr -> tr
    | None -> Alcotest.fail "tree not retained"
  in
  (match Span.well_formed tr with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let spans = Span.tree_spans tr in
  let hedge =
    match List.filter (fun s -> s.Span.s_name = "hedge") spans with
    | [ s ] -> s
    | l -> Alcotest.failf "expected one hedge span, got %d" (List.length l)
  in
  (match Span.span_events hedge with
  | [ (_, Span.Hedge_outcome "served") ] -> ()
  | _ -> Alcotest.fail "hedge outcome event missing");
  (* The fan-out span carries the shard name and parents the hedge. *)
  Alcotest.(check bool) "fan-out span parents the hedge" true
    (List.exists
       (fun s ->
         s.Span.s_name = "shard0" && s.Span.s_id = hedge.Span.s_parent)
       spans);
  (* Health surfaces attempts and wins per shard. *)
  let metrics = Lf_obs.Prom.render_metrics (Health.metrics router) in
  Alcotest.(check bool) "hedge wins exported" true
    (contains metrics "lf_shard_hedge_wins_total{shard=\"0\"} 1");
  Alcotest.(check bool) "drained keys exported" true
    (contains metrics "lf_shard_rebalance_drained_keys_total 0");
  Alcotest.(check bool) "health line shows wins/attempts" true
    (contains (Health.line router) "hedged=1/")

(* A rebalance racing an in-flight operation must wait for the key to
   drain — and count it, trace it, and journal the handoff with
   seq/tick stamps. *)
let test_rebalance_drain_and_journal () =
  with_spans @@ fun () ->
  let clock, _ = Clock.manual () in
  let ring = Hash_ring.create ~seed:5 ~shards:2 () in
  let gate = Mutex.create () in
  let gate_cv = Condition.create () in
  let gate_closed = ref true and started = ref false in
  let k = shard_key ring 0 in
  let to_ = 1 in
  let tbs = Array.init 2 (fun _ -> Hashtbl.create 16) in
  let backend i =
    {
      Router.insert =
        (fun key v ->
          if Hashtbl.mem tbs.(i) key then false
          else begin
            Hashtbl.replace tbs.(i) key v;
            true
          end);
      delete =
        (fun key ->
          if Hashtbl.mem tbs.(i) key then begin
            Hashtbl.remove tbs.(i) key;
            true
          end
          else false);
      find =
        (fun key ->
          if i = 0 && key = k then begin
            Mutex.lock gate;
            started := true;
            Condition.broadcast gate_cv;
            while !gate_closed do
              Condition.wait gate_cv gate
            done;
            Mutex.unlock gate
          end;
          Hashtbl.find_opt tbs.(i) key);
      batched = None;
    }
  in
  let router =
    Router.create ~hedge_reads:false ~ring
      ~svc_config:(fun _ -> Svc.config ~clock ())
      backend
  in
  ignore (Router.call router (Svc.Insert (k, 9)));
  (* A reader parks inside shard 0's backend, holding [k] in flight. *)
  let reader = Domain.spawn (fun () -> Router.call router (Svc.Find k)) in
  Mutex.lock gate;
  while not !started do
    Condition.wait gate_cv gate
  done;
  Mutex.unlock gate;
  let mover =
    Domain.spawn (fun () ->
        Router.rebalance router ~slot:(Hash_ring.slot_of ring k) ~to_
          ~key_range:(k + 1))
  in
  (* The mover reaches [k], finds it in flight, counts it and parks on
     the drain condition; only then release the reader. *)
  let rec wait_drained budget =
    if budget = 0 then Alcotest.fail "rebalance never waited on the key"
    else if Router.drained_keys router = 0 then begin
      Unix.sleepf 0.002;
      wait_drained (budget - 1)
    end
  in
  wait_drained 2500;
  Mutex.lock gate;
  gate_closed := false;
  Condition.broadcast gate_cv;
  Mutex.unlock gate;
  let read = Domain.join reader in
  let moved = Domain.join mover in
  Alcotest.(check bool) "parked read served" true (read = Svc.Served true);
  Alcotest.(check bool) "the key moved" true (moved >= 1);
  Alcotest.(check int) "drained key counted" 1 (Router.drained_keys router);
  Alcotest.(check (option int)) "key lives on the new shard" (Some 9)
    (Hashtbl.find_opt tbs.(to_) k);
  (* The rebalance traced itself: a root with a drain span on [k]. *)
  let rtree =
    List.find_opt
      (fun tr -> (Span.tree_root tr).Span.s_name = "rebalance")
      (Span.trees ())
  in
  (match rtree with
  | None -> Alcotest.fail "rebalance tree not retained"
  | Some tr ->
      (match Span.well_formed tr with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      let drains =
        List.filter (fun s -> s.Span.s_name = "drain") (Span.tree_spans tr)
      in
      Alcotest.(check int) "one drain span" 1 (List.length drains);
      match Span.span_events (List.hd drains) with
      | [ (_, Span.Drain_wait dk) ] -> Alcotest.(check int) "drain key" k dk
      | _ -> Alcotest.fail "drain event missing");
  (* Journal entries are stamped [#seq t=tick] and seq is monotonic. *)
  let stamps =
    List.filter_map
      (fun line ->
        match String.split_on_char ' ' line with
        | seq :: tick :: _ when String.length seq > 1 && seq.[0] = '#' ->
            Option.bind
              (int_of_string_opt (String.sub seq 1 (String.length seq - 1)))
              (fun s ->
                if String.length tick > 2 && String.sub tick 0 2 = "t=" then
                  Option.map
                    (fun t -> (s, t))
                    (int_of_string_opt
                       (String.sub tick 2 (String.length tick - 2)))
                else None)
        | _ -> None)
      (Router.journal ())
  in
  Alcotest.(check bool) "every journal line stamped" true
    (List.length stamps = List.length (Router.journal ())
    && List.length stamps >= 2);
  let seqs = List.map fst stamps in
  Alcotest.(check bool) "seq strictly monotonic" true
    (List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length seqs - 1) seqs)
       (List.tl seqs))

(* --- Wire verbs ------------------------------------------------------- *)

let test_wire_verbs () =
  (match Lf_svc.Wire.parse "SLO" with
  | Ok Lf_svc.Wire.Slo -> ()
  | _ -> Alcotest.fail "SLO did not parse");
  (match Lf_svc.Wire.parse "flightdump" with
  | Ok Lf_svc.Wire.Flightdump -> ()
  | _ -> Alcotest.fail "FLIGHTDUMP did not parse");
  match Lf_svc.Wire.parse "SLO now" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "SLO with arguments should not parse"

let () =
  Alcotest.run "trace"
    [
      ( "span",
        [
          test_nesting_well_formed;
          Alcotest.test_case "ids unique across domains" `Quick
            test_ids_unique_across_domains;
          Alcotest.test_case "off level allocates nothing" `Quick
            test_off_zero_alloc;
        ] );
      ( "replay",
        [
          Alcotest.test_case "deterministic executions dump byte-identical"
            `Quick test_replay_byte_identical;
        ] );
      ( "exemplars",
        [
          Alcotest.test_case "tail buckets and worst-recent traces" `Quick
            test_exemplars;
          Alcotest.test_case "prometheus exemplar syntax" `Quick
            test_prom_exemplar_lines;
        ] );
      ( "slo",
        [ Alcotest.test_case "burn-rate math" `Quick test_slo_burn_math ] );
      ( "pipeline",
        [
          Alcotest.test_case "decision spans through Svc" `Quick
            test_svc_decision_spans;
          Alcotest.test_case "C&S attribution into op spans" `Quick
            test_cas_attribution;
        ] );
      ( "router",
        [
          Alcotest.test_case "hedge spans and win counters" `Quick
            test_router_hedge_spans;
          Alcotest.test_case "rebalance drain accounting + journal stamps"
            `Quick test_rebalance_drain_and_journal;
        ] );
      ( "wire",
        [ Alcotest.test_case "SLO / FLIGHTDUMP verbs" `Quick test_wire_verbs ]
      );
    ]
