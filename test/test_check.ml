(* Tests for the lf_check sanitizers.

   Protocol sanitizer (Check_mem): each seeded mutant of Fr_list - one
   corrupted step of the three-step deletion - must raise
   Protocol_violation naming the specific invariant it breaks, while the
   unmutated list and skiplist run multi-domain stress, recorded
   linearizable histories and bounded-schedule exploration under the
   sanitizer without a single violation.

   Race detector (Race_mem): a plain-store lost update races, a CAS-retry
   loop does not, a successful C&S orders a subsequent plain store, and the
   FR list's only racy cells are backlinks (the benign same-value stores
   the paper's design explicitly permits). *)

module Sim = Lf_dsim.Sim
module Ev = Lf_kernel.Mem_event
module Viol = Lf_check.Violation
module RD = Lf_check.Race_detector

(* Checked memory over real atomics, and the structures over it. *)
module CM = Lf_check.Check_mem.Make (Lf_kernel.Atomic_mem)
module CFR = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (CM)
module CSL = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (CM)

(* Checked memory over the deterministic simulator. *)
module CSM = Lf_check.Check_mem.Make (Lf_dsim.Sim_mem)
module CFRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (CSM)

(* Race-checked memory over the simulator. *)
module RM = Lf_check.Race_mem.Make (Lf_dsim.Sim_mem)
module RFR = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (RM)

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

(* --- Seeded mutants: each caught, by name --- *)

let expect_violation inv f =
  match f () with
  | _ -> Alcotest.failf "expected a violation (%s); none raised" inv
  | exception Viol.Protocol_violation v ->
      Alcotest.(check string) "invariant" inv v.Viol.invariant;
      Alcotest.(check bool)
        "report carries a chain snapshot" true (v.snapshot <> []);
      Alcotest.(check bool) "report carries a trace" true (v.trace <> [])

let mutant_case name mutation inv =
  Alcotest.test_case name `Quick (fun () ->
      CM.reset ();
      let t = CFR.create_with ~mutation ~use_flags:true () in
      List.iter (fun k -> ignore (CFR.insert t k k)) [ 1; 2; 3; 4; 5 ];
      expect_violation inv (fun () -> CFR.delete t 3))

let mutant_cases =
  [
    mutant_case "skip-flag mutant -> INV3" CFR.Skip_flag
      "INV3: marking without a flagged predecessor";
    mutant_case "double-mark mutant -> INV2" CFR.Double_mark
      "INV2: marked is terminal";
    mutant_case "unlink-unflagged mutant -> INV3" CFR.Unlink_unflagged
      "INV3: physical delete from an unflagged predecessor";
    mutant_case "backlink-right mutant -> INV4" CFR.Backlink_right
      "INV4: backlink points right";
  ]

(* The same mutant under the simulator: the explorer records the violation
   as a failing schedule (with a reproducing prefix) instead of aborting. *)
let test_explore_surfaces_mutant () =
  let mk () =
    CSM.reset ();
    let t = CFRS.create_with ~mutation:CFRS.Skip_flag ~use_flags:true () in
    Sim.quiet (fun () ->
        List.iter (fun k -> ignore (CFRS.insert t k k)) [ 1; 2; 3 ]);
    let body _pid = ignore (CFRS.delete t 2) in
    ([| body; body |], fun () -> Ok ())
  in
  let res = Lf_dsim.Explore.run ~max_preemptions:1 ~max_schedules:200 mk in
  match res.failures with
  | [] -> Alcotest.fail "mutant not surfaced by exploration"
  | (_, msg) :: _ ->
      Alcotest.(check bool)
        "failure message names the invariant" true
        (contains msg "INV3: marking without a flagged predecessor")

(* --- Positive runs: the honest structures are violation-free --- *)

let mix = Lf_workload.Opgen.{ insert_pct = 40; delete_pct = 40 }

let test_checked_list_sequential () =
  CM.reset ();
  let t = CFR.create () in
  for k = 1 to 64 do
    ignore (CFR.insert t k k)
  done;
  for k = 1 to 64 do
    if k mod 2 = 0 then ignore (CFR.delete t k)
  done;
  CFR.check_invariants t;
  Alcotest.(check int) "length" 32 (CFR.length t)

(* EXP-10-style: recorded multi-domain bursts stay linearizable, and the
   larger throughput-style stress completes with zero violations. *)
let test_checked_list_stress () =
  CM.reset ();
  List.iter
    (fun seed ->
      let h =
        Lf_workload.Runner.run_recorded
          (module CFR)
          ~domains:3 ~ops_per_domain:8 ~key_range:4 ~mix ~seed ()
      in
      Support.assert_linearizable h)
    [ 31; 32; 33 ];
  let r =
    Lf_workload.Runner.run_throughput
      (module CFR)
      ~domains:2 ~ops_per_domain:3_000 ~key_range:64 ~mix ~seed:5 ()
  in
  Alcotest.(check bool) "ran" true (r.Lf_workload.Runner.total_ops > 0)

let test_checked_skiplist_stress () =
  CM.reset ();
  List.iter
    (fun seed ->
      let h =
        Lf_workload.Runner.run_recorded
          (module CSL)
          ~domains:3 ~ops_per_domain:8 ~key_range:4 ~mix ~seed ()
      in
      Support.assert_linearizable h)
    [ 41; 42; 43 ];
  let r =
    Lf_workload.Runner.run_throughput
      (module CSL)
      ~domains:2 ~ops_per_domain:2_000 ~key_range:64 ~mix ~seed:6 ()
  in
  Alcotest.(check bool) "ran" true (r.Lf_workload.Runner.total_ops > 0)

let test_checked_sim_random_schedules () =
  List.iter
    (fun seed ->
      CSM.reset ();
      let t = CFRS.create () in
      let ops =
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> CFRS.insert t k k);
            delete = (fun k -> CFRS.delete t k);
            find = (fun k -> CFRS.mem t k);
          }
      in
      let h =
        Lf_workload.Sim_driver.run_recorded ~policy:(Sim.Random seed) ~procs:3
          ~ops_per_proc:15 ~key_range:6 ~mix ~seed ops
      in
      Support.assert_linearizable h)
    [ 51; 52; 53; 54 ]

(* --- Race detector --- *)

let test_race_lost_update () =
  RM.reset ();
  let r = Sim.quiet (fun () -> RM.make 0) in
  let body _pid =
    let v = RM.get r in
    RM.set r (v + 1)
  in
  ignore (Sim.run ~policy:(Sim.Random 42) [| body; body |]);
  Alcotest.(check bool) "plain-store increment races" true (RM.races () <> [])

let test_race_cas_clean () =
  RM.reset ();
  let r = Sim.quiet (fun () -> RM.make 0) in
  let body _pid =
    let rec incr_once () =
      let v = RM.get r in
      if not (RM.cas r ~kind:Ev.Other_cas ~expect:v (v + 1)) then incr_once ()
    in
    incr_once ()
  in
  ignore (Sim.run ~policy:(Sim.Random 7) [| body; body |]);
  Alcotest.(check int) "CAS-retry increment is race-free" 0
    (List.length (RM.races ()))

let test_race_cas_orders_plain_store () =
  (* p0: plain-store r, then C&S-release a flag cell; p1: spin-acquire the
     flag, then plain-store r.  The release/acquire pair orders the two
     plain stores, so there is no race. *)
  RM.reset ();
  let r, flag = Sim.quiet (fun () -> (RM.make 0, RM.make 0)) in
  let body pid =
    if pid = 0 then begin
      RM.set r 1;
      ignore (RM.cas flag ~kind:Ev.Other_cas ~expect:0 1)
    end
    else begin
      let rec wait () = if RM.get flag = 0 then wait () in
      wait ();
      let v = RM.get r in
      RM.set r (v + 1)
    end
  in
  ignore (Sim.run ~policy:Sim.Round_robin [| body; body |]);
  Alcotest.(check int) "released store does not race" 0
    (List.length (RM.races ()))

(* The FR list's only unsynchronized stores are backlink writes - benign by
   design (every racing helper stores the same predecessor).  Any other
   racy cell would be an algorithm bug. *)
let test_fr_list_races_only_on_backlinks () =
  let total = ref 0 in
  List.iter
    (fun seed ->
      RM.reset ();
      let t = RFR.create () in
      Sim.quiet (fun () ->
          List.iter (fun k -> ignore (RFR.insert t k k)) [ 1; 2; 3; 4; 5; 6 ]);
      let body _pid =
        List.iter
          (fun k ->
            ignore (RFR.delete t k);
            ignore (RFR.insert t k k))
          [ 2; 3; 4 ]
      in
      ignore (Sim.run ~policy:(Sim.Random seed) [| body; body; body |]);
      let races = RM.races () in
      total := !total + List.length races;
      List.iter
        (fun (rc : RD.race) ->
          if not (contains rc.owner ".backlink") then
            Alcotest.failf "unexpected racy cell: %a" RD.pp_race rc)
        races)
    [ 3; 5; 8; 13; 21; 34 ];
  Alcotest.(check bool)
    "helping produced the benign backlink races" true (!total > 0)

let () =
  Alcotest.run "check"
    [
      ("mutants", mutant_cases);
      ( "explore integration",
        [
          Alcotest.test_case "mutant surfaces as failing schedule" `Quick
            test_explore_surfaces_mutant;
        ] );
      ( "positive",
        [
          Alcotest.test_case "sequential under sanitizer" `Quick
            test_checked_list_sequential;
          Alcotest.test_case "fr-list multi-domain stress" `Slow
            test_checked_list_stress;
          Alcotest.test_case "fr-skiplist multi-domain stress" `Slow
            test_checked_skiplist_stress;
          Alcotest.test_case "random simulator schedules" `Quick
            test_checked_sim_random_schedules;
        ] );
      ( "races",
        [
          Alcotest.test_case "lost update detected" `Quick
            test_race_lost_update;
          Alcotest.test_case "cas retry clean" `Quick test_race_cas_clean;
          Alcotest.test_case "release/acquire orders plain store" `Quick
            test_race_cas_orders_plain_store;
          Alcotest.test_case "fr-list races only on backlinks" `Quick
            test_fr_list_races_only_on_backlinks;
        ] );
    ]
