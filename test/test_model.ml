(* Tests for the DPOR stateless model checker (lib/model): the engine on
   micro-scenarios with known answers, agreement with the naive explorer,
   failure replay, the structure certification layer, the seeded-mutant
   kill gate at minimal scope, and byte-determinism of the reports. *)

module Sim = Lf_dsim.Sim
module SM = Lf_dsim.Sim_mem
module Explore = Lf_dsim.Explore
module Dpor = Lf_model.Dpor
module Certify = Lf_model.Certify
module Ev = Lf_kernel.Mem_event

(* --- The engine on micro-scenarios --- *)

let racy_counter_mk () =
  (* Non-atomic increment: read then blind write; some interleaving loses
     an update. *)
  let r = SM.make 0 in
  let body _pid =
    for _ = 1 to 2 do
      let v = SM.get r in
      SM.set r (v + 1)
    done
  in
  let check () =
    let v = Sim.quiet (fun () -> SM.get r) in
    if v = 4 then Ok () else Error (Printf.sprintf "lost update: %d" v)
  in
  ([| body; body |], check)

let cas_counter_mk () =
  let r = SM.make 0 in
  let body _pid =
    for _ = 1 to 2 do
      let rec incr_once () =
        let v = SM.get r in
        if not (SM.cas r ~kind:Ev.Other_cas ~expect:v (v + 1)) then incr_once ()
      in
      incr_once ()
    done
  in
  let check () =
    let v = Sim.quiet (fun () -> SM.get r) in
    if v = 4 then Ok () else Error (Printf.sprintf "bad count: %d" v)
  in
  ([| body; body |], check)

let test_finds_lost_update () =
  (* Many distinct schedules lose an update; with an unbounded failure
     budget the search must still drain. *)
  let res = Dpor.run ~max_failures:max_int racy_counter_mk in
  Alcotest.(check bool) "found the lost update" true (res.failures <> []);
  Alcotest.(check bool) "exhausted" false res.truncated

let test_cas_counter_safe () =
  let res = Dpor.run cas_counter_mk in
  Alcotest.(check int) "no failures" 0 (List.length res.failures);
  Alcotest.(check bool) "exhausted" false res.truncated;
  Alcotest.(check bool) "explored more than one schedule" true
    (res.schedules_run > 1)

let test_independent_procs_one_schedule () =
  (* Two processes on distinct cells: every interleaving is in the same
     Mazurkiewicz trace, so DPOR needs exactly one schedule. *)
  let mk () =
    let a = SM.make 0 and b = SM.make 0 in
    let body pid =
      let r = if pid = 0 then a else b in
      for _ = 1 to 3 do
        let v = SM.get r in
        SM.set r (v + 1)
      done
    in
    ([| body; body |], fun () -> Ok ())
  in
  let res = Dpor.run mk in
  Alcotest.(check int) "one schedule" 1
    (res.schedules_run + res.sleep_set_prunes)

let test_same_value_writes_commute () =
  (* Two blind stores of the same immutable block (the backlink pattern):
     without the same-value refinement these are a race; with it, one
     schedule suffices. *)
  let v = Some 42 in
  let mk () =
    let r = SM.make None in
    let body _pid = SM.set r v in
    ([| body; body |], fun () -> Ok ())
  in
  let res = Dpor.run mk in
  Alcotest.(check int) "one schedule" 1
    (res.schedules_run + res.sleep_set_prunes)

let test_agrees_with_naive_dfs () =
  (* On a scope the naive explorer can exhaust, both must agree on the
     verdict, and DPOR must not replay more schedules. *)
  let mk = racy_counter_mk in
  let naive =
    Explore.run ~max_preemptions:max_int ~max_schedules:50_000
      ~max_failures:max_int mk
  in
  let dpor = Dpor.run ~max_failures:max_int mk in
  Alcotest.(check bool) "naive exhausted its space" false naive.truncated;
  Alcotest.(check bool) "both find the bug" true
    (naive.failures <> [] && dpor.Dpor.failures <> []);
  Alcotest.(check bool) "DPOR replays fewer schedules" true
    (Certify.replays dpor <= naive.schedules_run)

let test_failure_trace_replays () =
  let res = Dpor.run racy_counter_mk in
  match res.failures with
  | [] -> Alcotest.fail "expected a failure"
  | (trace, _) :: _ ->
      let _, verdict =
        Dpor.run_one ~max_steps:10_000 racy_counter_mk (Array.of_list trace)
      in
      Alcotest.(check bool) "reproduced" true (Result.is_error verdict)

let test_engine_deterministic () =
  let r1 = Dpor.run racy_counter_mk in
  let r2 = Dpor.run racy_counter_mk in
  Alcotest.(check bool) "identical outcomes" true (r1 = r2)

(* --- Explore.run failure reporting (dedupe + truncation) --- *)

let test_explore_failures_deduped () =
  (* The racy counter fails under many forced prefixes that replay to the
     same schedule; each distinct failing schedule must be reported once. *)
  let res = Explore.run ~max_preemptions:2 ~max_failures:1_000 racy_counter_mk in
  let traces =
    List.map
      (fun (prefix, _) ->
        let trace, _ =
          Explore.run_one ~max_steps:10_000 racy_counter_mk
            (Array.of_list prefix)
        in
        List.map (fun (_, c, _) -> c) trace)
      res.failures
  in
  let distinct = List.sort_uniq compare traces in
  Alcotest.(check int) "one report per distinct failing schedule"
    (List.length distinct) (List.length traces)

let test_explore_truncated_on_max_failures () =
  let res = Explore.run ~max_preemptions:2 ~max_failures:1 racy_counter_mk in
  Alcotest.(check int) "stopped at one failure" 1 (List.length res.failures);
  Alcotest.(check bool) "reported as truncated" true res.truncated

(* --- Structure certification --- *)

let scenario ~structure name =
  List.find
    (fun s -> s.Certify.sc_name = name)
    (Certify.scenarios ~structure ~quick:true ())

let certified structure name =
  let c = Certify.certify ~structure (scenario ~structure name) in
  (match c.ct_outcome.Dpor.failures with
  | [] -> ()
  | (trace, msg) :: _ ->
      Alcotest.failf "%s/%s failed under [%s]: %s" structure name
        (String.concat ";" (List.map string_of_int trace))
        msg);
  Alcotest.(check bool)
    (structure ^ " exhausted")
    false c.ct_outcome.Dpor.truncated;
  Alcotest.(check bool)
    (structure ^ " explored > 1 schedule")
    true
    (c.ct_outcome.Dpor.schedules_run > 1)

let test_certify_fr_list () = certified "fr-list" "2x2-conflict"
let test_certify_fr_skiplist () = certified "fr-skiplist" "2x2-conflict"
let test_certify_hashtable () = certified "lf-hashtable" "2x2-conflict"
let test_certify_pqueue () = certified "pqueue" "2x2-conflict"
let test_certify_harris () = certified "harris-list" "2x2-conflict"

let test_certify_fr_list_2x3 () = certified "fr-list" "2x3-mixed"

(* EXP-22 ablation: both descriptor-interning variants must certify, and
   interning must be schedule-neutral — reusing a physically-equal
   descriptor must not change which C&Ss DPOR considers dependent, so the
   explored schedule count is identical to the allocating variant's. *)
let test_certify_fr_list_noreuse () = certified "fr-list-noreuse" "2x2-conflict"

let test_certify_fr_skiplist_noreuse () =
  certified "fr-skiplist-noreuse" "2x2-conflict"

let test_reuse_schedule_neutral () =
  let outcome structure =
    (Certify.certify ~structure (scenario ~structure "2x2-conflict")).ct_outcome
  in
  let on = outcome "fr-list" and off = outcome "fr-list-noreuse" in
  Alcotest.(check (list (pair (list int) string))) "both clean" [] on.Dpor.failures;
  Alcotest.(check (list (pair (list int) string))) "both clean" [] off.Dpor.failures;
  Alcotest.(check int)
    "same schedule count with and without interning"
    off.Dpor.schedules_run on.Dpor.schedules_run

(* --- Mutant-kill gate --- *)

let test_mutants_killed_at_minimal_scope () =
  let expected =
    [
      ("skip-flag", "1p-delete");
      ("double-mark", "1p-delete");
      ("unlink-unflagged", "1p-delete");
      ("backlink-right", "1p-delete");
      ("no-help", "2p-deletes");
    ]
  in
  let matrix = Certify.kill_matrix () in
  Alcotest.(check bool) "all mutants killed" true (Certify.kills_ok matrix);
  List.iter
    (fun k ->
      let want = List.assoc k.Certify.k_mutation expected in
      match k.Certify.k_killed_at with
      | None -> Alcotest.failf "%s not killed" k.Certify.k_mutation
      | Some (scope, _, msg) ->
          Alcotest.(check string)
            (k.Certify.k_mutation ^ " minimal scope")
            want scope;
          Alcotest.(check bool)
            (k.Certify.k_mutation ^ " has a message")
            true (msg <> "");
          (* Minimality: every smaller scope was exhausted clean. *)
          List.iter
            (fun (s, n) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s survived %s" k.Certify.k_mutation s)
                true (n > 0))
            k.Certify.k_survived)
    matrix

(* --- Report determinism --- *)

let test_reports_byte_identical () =
  let render () =
    let cts =
      Certify.certify_all ~quick:true ~structures:[ "fr-list" ] ()
    in
    Certify.render_certificates ~json:false cts
    ^ Certify.render_certificates ~json:true cts
  in
  Alcotest.(check string) "byte-identical" (render ()) (render ())

let () =
  Alcotest.run "model"
    [
      ( "dpor engine",
        [
          Alcotest.test_case "finds lost update" `Quick test_finds_lost_update;
          Alcotest.test_case "cas counter safe" `Quick test_cas_counter_safe;
          Alcotest.test_case "independent procs: one schedule" `Quick
            test_independent_procs_one_schedule;
          Alcotest.test_case "same-value writes commute" `Quick
            test_same_value_writes_commute;
          Alcotest.test_case "agrees with naive DFS" `Slow
            test_agrees_with_naive_dfs;
          Alcotest.test_case "failure trace replays" `Quick
            test_failure_trace_replays;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
        ] );
      ( "explore reporting",
        [
          Alcotest.test_case "failures deduped" `Quick
            test_explore_failures_deduped;
          Alcotest.test_case "truncated on max_failures" `Quick
            test_explore_truncated_on_max_failures;
        ] );
      ( "certification",
        [
          Alcotest.test_case "fr-list conflict" `Slow test_certify_fr_list;
          Alcotest.test_case "fr-skiplist conflict" `Slow
            test_certify_fr_skiplist;
          Alcotest.test_case "hashtable conflict" `Slow test_certify_hashtable;
          Alcotest.test_case "pqueue conflict" `Slow test_certify_pqueue;
          Alcotest.test_case "harris conflict" `Slow test_certify_harris;
          Alcotest.test_case "fr-list 2x3" `Slow test_certify_fr_list_2x3;
          Alcotest.test_case "fr-list no-reuse conflict" `Slow
            test_certify_fr_list_noreuse;
          Alcotest.test_case "fr-skiplist no-reuse conflict" `Slow
            test_certify_fr_skiplist_noreuse;
          Alcotest.test_case "interning schedule-neutral" `Slow
            test_reuse_schedule_neutral;
        ] );
      ( "mutants",
        [
          Alcotest.test_case "killed at minimal scope" `Slow
            test_mutants_killed_at_minimal_scope;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "reports byte-identical" `Slow
            test_reports_byte_identical;
        ] );
    ]
