bench/exp14.ml: Domain Lf_dsim Lf_kernel Lf_list Lf_skiplist Lf_workload List Printf Tables
