bench/exp4.ml: Format Lf_baselines Lf_list Lf_workload List Printf Tables
