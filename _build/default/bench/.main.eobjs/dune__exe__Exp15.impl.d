bench/exp15.ml: Array Lf_dsim Lf_kernel Lf_scenarios Lf_skiplist List Printf Tables
