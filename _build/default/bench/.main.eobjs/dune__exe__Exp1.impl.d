bench/exp1.ml: Lf_scenarios List Printf Tables
