bench/exp6.ml: Array Float Lf_dsim Lf_kernel Lf_list Lf_skiplist List Printf Tables
