bench/exp9.ml: Array Lf_kernel Lf_scenarios List Printf Tables
