bench/exp10.ml: Lf_baselines Lf_dsim Lf_kernel Lf_lin Lf_list Lf_skiplist Lf_workload List Tables
