bench/exp5.ml: Format Lf_skiplist Lf_workload List Printf Tables
