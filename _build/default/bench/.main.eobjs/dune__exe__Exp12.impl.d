bench/exp12.ml: Domain Lf_baselines Lf_kernel Lf_pqueue List Printf Tables Unix
