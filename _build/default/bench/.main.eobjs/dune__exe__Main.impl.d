bench/main.ml: Array Bechamel_suite Exp1 Exp10 Exp11 Exp12 Exp13 Exp14 Exp15 Exp2 Exp3 Exp4 Exp5 Exp6 Exp7 Exp8 Exp9 Figs List Printf Sys Unix
