bench/exp7.ml: Array Hashtbl Lf_dsim Lf_kernel Lf_skiplist List Printf Tables
