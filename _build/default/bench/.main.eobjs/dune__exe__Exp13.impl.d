bench/exp13.ml: Array Lf_kernel Lf_scenarios List Printf Tables
