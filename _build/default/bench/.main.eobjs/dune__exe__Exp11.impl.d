bench/exp11.ml: Lf_dsim Lf_hashtable Lf_list Lf_skiplist Lf_workload List Printf Tables
