bench/bechamel_suite.ml: Analyze Bechamel Benchmark Gc Hashtbl Instance Lf_baselines Lf_kernel Lf_list Lf_skiplist Lf_workload List Measure Option Printf Staged Tables Test Time Toolkit
