bench/main.mli:
