bench/exp8.ml: Lf_dsim Lf_kernel Lf_list Lf_workload List Printf Tables
