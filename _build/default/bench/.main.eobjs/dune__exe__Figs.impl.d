bench/figs.ml: Format Lf_baselines Lf_dsim Lf_kernel Lf_list List Printf Tables
