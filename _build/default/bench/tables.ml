(* Minimal fixed-width table printer for the experiment outputs. *)

let hr width = print_endline (String.make width '-')

let section title =
  print_newline ();
  hr 78;
  Printf.printf "%s\n" title;
  hr 78

let subsection title = Printf.printf "\n-- %s --\n" title

let row widths cells =
  let line =
    List.map2
      (fun w c ->
        if String.length c >= w then c else c ^ String.make (w - String.length c) ' ')
      widths cells
    |> String.concat "  "
  in
  print_endline line

let note fmt = Printf.printf ("   " ^^ fmt ^^ "\n")
