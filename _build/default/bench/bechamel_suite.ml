(* Per-operation latency microbenchmarks (Bechamel): one Test.make per
   implementation, measuring a mixed insert/find/delete cycle on a prefilled
   structure.  Complements the experiment tables with real-time costs of the
   same operations the tables count in steps. *)

open Bechamel
open Toolkit

let make_cycle (module D : Lf_workload.Runner.INT_DICT) key_range =
  let t = D.create () in
  let rng = Lf_kernel.Splitmix.create 1 in
  let inserted = ref 0 in
  while !inserted < key_range / 2 do
    if D.insert t (Lf_kernel.Splitmix.int rng key_range) 0 then incr inserted
  done;
  let i = ref 0 in
  Test.make ~name:D.name
    (Staged.stage (fun () ->
         (* One deterministic mixed cycle per run. *)
         incr i;
         let k = (!i * 7919) land (key_range - 1) in
         ignore (D.insert t k 0);
         ignore (D.find t ((!i * 104729) land (key_range - 1)));
         ignore (D.delete t ((!i * 31) land (key_range - 1)))))

let list_impls : (module Lf_workload.Runner.INT_DICT) list =
  [
    (module Lf_list.Fr_list.Atomic_int);
    (module Lf_baselines.Harris_list.Atomic_int);
    (module Lf_baselines.Michael_list.Atomic_int);
    (module Lf_baselines.Valois_list.Atomic_int);
    (module Lf_baselines.Lazy_list.Int);
    (module Lf_baselines.Coarse_list.Int);
    (module Lf_baselines.Seq_list.Int);
  ]

let skiplist_impls : (module Lf_workload.Runner.INT_DICT) list =
  [
    (module Lf_skiplist.Fr_skiplist.Atomic_int);
    (module Lf_skiplist.Fraser_skiplist.Atomic_int);
    (module Lf_skiplist.St_skiplist.Atomic_int);
    (module Lf_skiplist.Locked_skiplist.Int);
    (module Lf_skiplist.Seq_skiplist.Int);
  ]

(* Time per cycle via Bechamel OLS; minor-heap allocation per cycle measured
   directly with [Gc.minor_words] (Bechamel's minor_allocated instance
   reports zero on this runtime).  Allocation matters here: every successful
   C&S in the descriptor encoding allocates a fresh record, and the paper's
   Section 5 memory-management discussion is subsumed by the GC - this
   measures what that costs. *)
let analyze tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let words_per_cycle (module D : Lf_workload.Runner.INT_DICT) key_range =
  let t = D.create () in
  let rng = Lf_kernel.Splitmix.create 1 in
  let inserted = ref 0 in
  while !inserted < key_range / 2 do
    if D.insert t (Lf_kernel.Splitmix.int rng key_range) 0 then incr inserted
  done;
  let cycles = 20_000 in
  let before = Gc.minor_words () in
  for i = 1 to cycles do
    ignore (D.insert t ((i * 7919) land (key_range - 1)) 0);
    ignore (D.find t ((i * 104729) land (key_range - 1)));
    ignore (D.delete t ((i * 31) land (key_range - 1)))
  done;
  (Gc.minor_words () -. before) /. float_of_int cycles

let estimate results name =
  match Hashtbl.find_opt results name with
  | None -> (nan, nan)
  | Some ols ->
      let est =
        match Analyze.OLS.estimates ols with Some [ e ] -> e | _ -> nan
      in
      (est, Option.value ~default:nan (Analyze.OLS.r_square ols))

let print_results title group times impls key_range =
  Tables.subsection title;
  let widths = [ 20; 12; 8; 14 ] in
  Tables.row widths [ "impl"; "ns/cycle"; "r2"; "words/cycle" ];
  let rows =
    List.map
      (fun (module D : Lf_workload.Runner.INT_DICT) ->
        let name = group ^ "/" ^ D.name in
        let ns, r2 = estimate times name in
        let words = words_per_cycle (module D) key_range in
        (name, ns, r2, words))
      impls
  in
  List.iter
    (fun (name, ns, r2, words) ->
      Tables.row widths
        [
          name;
          Printf.sprintf "%.0f" ns;
          Printf.sprintf "%.3f" r2;
          Printf.sprintf "%.1f" words;
        ])
    (List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b) rows)

let run () =
  Tables.section
    "MICRO  Bechamel per-op latency (1 insert + 1 find + 1 delete, n=512)";
  let lists =
    Test.make_grouped ~name:"lists" (List.map (fun d -> make_cycle d 1024) list_impls)
  in
  print_results "linked lists (1024-key range, half full)" "lists"
    (analyze lists) list_impls 1024;
  let sls =
    Test.make_grouped ~name:"skiplists"
      (List.map (fun d -> make_cycle d 8192) skiplist_impls)
  in
  print_results "skip lists (8192-key range, half full)" "skiplists"
    (analyze sls) skiplist_impls 8192
