(* FIG-1 / FIG-2: the deletion-protocol state diagrams, regenerated as
   step-by-step traces from deterministic simulator runs.

   Figure 1 (Harris): two-step deletion - mark, then unlink.
   Figure 2 (F&R): three-step deletion - flag the predecessor, set the
   backlink and mark the node, then unlink and unflag. *)

module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module HS = Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module Sim = Lf_dsim.Sim

let pp_key fmt (k : int Lf_kernel.Ordered.bounded) =
  match k with
  | Lf_kernel.Ordered.Neg_inf -> Format.fprintf fmt "H"
  | Lf_kernel.Ordered.Pos_inf -> Format.fprintf fmt "T"
  | Lf_kernel.Ordered.Mid k -> Format.fprintf fmt "%d" k

let fr_trace () =
  Tables.subsection "Figure 2: three-step deletion (flag, backlink+mark, unlink)";
  let t = FRS.create () in
  ignore
    (Sim.run
       [| (fun _ -> List.iter (fun k -> ignore (FRS.insert t k 0)) [ 1; 2; 3 ]) |]);
  let last = ref "" in
  let render () =
    let cells = Sim.quiet (fun () -> FRS.Debug.physical_chain t) in
    Format.asprintf "%a"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt " -> ")
         (fun fmt (c : FRS.Debug.cell) ->
           Format.fprintf fmt "%a%s%s%s" pp_key c.key
             (if c.flagged then "!" else "")
             (if c.marked then "*" else "")
             (match c.backlink_key with
             | Some b -> Format.asprintf "(bl:%a)" pp_key b
             | None -> "")))
      cells
  in
  let show st _pid =
    ignore st;
    let s = render () in
    if s <> !last then begin
      Printf.printf "   %s\n" s;
      last := s
    end
  in
  Printf.printf "   %s\n" (render ());
  ignore (Sim.run ~on_step:show [| (fun _ -> ignore (FRS.delete t 2)) |]);
  Tables.note "legend: ! = flagged successor field, * = marked, bl = backlink"

let harris_trace () =
  Tables.subsection "Figure 1: Harris's two-step deletion (mark, unlink)";
  let t = HS.create () in
  ignore
    (Sim.run
       [| (fun _ -> List.iter (fun k -> ignore (HS.insert t k 0)) [ 1; 2; 3 ]) |]);
  let last = ref "" in
  let render () =
    let cells = Sim.quiet (fun () -> HS.Debug.physical_chain t) in
    Format.asprintf "%a"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.fprintf fmt " -> ")
         (fun fmt (c : HS.Debug.cell) ->
           Format.fprintf fmt "%a%s" pp_key c.key
             (if c.marked then "*" else "")))
      cells
  in
  let show st _pid =
    ignore st;
    let s = render () in
    if s <> !last then begin
      Printf.printf "   %s\n" s;
      last := s
    end
  in
  Printf.printf "   %s\n" (render ());
  ignore (Sim.run ~on_step:show [| (fun _ -> ignore (HS.delete t 2)) |]);
  Tables.note "legend: * = marked successor field"

let run () =
  Tables.section "FIG-1 / FIG-2  Deletion protocol traces";
  harris_trace ();
  fr_trace ()
