(* The paper's motivating scenario (Section 3.1), runnable.

   One process keeps deleting the last node of the list while the others
   try to insert right there.  Harris's list restarts each failed inserter
   from the head; the Fomitchev-Ruppert list recovers through a backlink.
   This example replays that exact schedule deterministically in the
   simulator and prints what each inserter paid per interference.

     dune exec examples/adversary_demo.exe *)

module Sim = Lf_dsim.Sim
module Ev = Lf_kernel.Mem_event
module FR = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module HA = Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let n = 100 (* initial list length *)
let rounds = 40 (* deletions of the last node *)

(* Drive [insert]/[delete] through the Section 3.1 schedule and report the
   inserter's essential steps per round. *)
let scenario name insert delete =
  let inserter _pid =
    Sim.op_begin ~n;
    ignore (insert 1_000_000);
    Sim.op_end ()
  in
  let deleter _pid =
    for r = 1 to rounds do
      Sim.op_begin ~n:(n - r + 1);
      ignore (delete (n - r + 1));
      Sim.op_end ()
    done
  in
  let ins_attempts st =
    (Sim.counters st 0).Lf_kernel.Counters.cas_attempts.(Lf_kernel.Counters
                                                         .kind_index
                                                           Ev.Insertion)
  in
  let policy st =
    if
      (not (Sim.is_finished st 0))
      && Sim.pending_kind st 0 <> Some (Lf_dsim.Sim_effect.Cas Ev.Insertion)
    then Some 0 (* let the inserter walk to its insertion point *)
    else if (not (Sim.is_finished st 0)) && ins_attempts st < Sim.ops_completed st 1
    then Some 0 (* release it: fail, recover, park again *)
    else if not (Sim.is_finished st 1) then Some 1 (* next deletion *)
    else None
  in
  let res = Sim.run ~policy:(Sim.Custom policy) [| inserter; deleter |] in
  let c = res.per_proc.(0) in
  Printf.printf
    "%-8s inserter: %4d essential steps over %d interferences  (%5.1f per \
     interference, %d backlinks walked)\n"
    name
    (Lf_kernel.Counters.essential_steps c)
    rounds
    (float_of_int (Lf_kernel.Counters.essential_steps c) /. float_of_int rounds)
    c.Lf_kernel.Counters.backlink_steps

let () =
  Printf.printf
    "Section 3.1 scenario: %d-element list, a deleter removes the last\n\
     node %d times, always right after the inserter locates its position.\n\n"
    n rounds;
  (let t = FR.create () in
   ignore
     (Sim.run
        [|
          (fun _ ->
            for i = 1 to n do
              ignore (FR.insert t i i)
            done);
        |]);
   scenario "fr" (fun k -> FR.insert t k k) (fun k -> FR.delete t k));
  (let t = HA.create () in
   ignore
     (Sim.run
        [|
          (fun _ ->
            for i = 1 to n do
              ignore (HA.insert t i i)
            done);
        |]);
   scenario "harris" (fun k -> HA.insert t k k) (fun k -> HA.delete t k));
  print_newline ();
  print_endline
    "The Harris inserter re-searches from the head after every failed C&S\n\
     (cost ~ list length per interference); the Fomitchev-Ruppert inserter\n\
     follows one backlink and resumes in place (constant cost).  This is\n\
     the gap the paper's O(n(S) + c(S)) amortized bound formalizes.";
  print_endline "adversary_demo done"
