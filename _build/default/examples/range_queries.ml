(* Order-aware queries on the lock-free skip list: a miniature time-series
   store where writers append readings while readers run windowed range
   queries, successor lookups and min/max - all without locks, all while
   the structure churns.

     dune exec examples/range_queries.exe *)

module TS = Lf_skiplist.Fr_skiplist.Atomic_int
(* key = timestamp, value = reading *)

let () =
  let store = TS.create () in

  (* Seed one hour of readings, one per second. *)
  for t = 0 to 3599 do
    ignore (TS.insert store t (100 + (t mod 17)))
  done;

  (* Sequential queries. *)
  let window lo hi =
    TS.fold_range store ~lo ~hi (fun acc _ v -> acc + v) 0
  in
  Printf.printf "sum of minute 10 (ts 600..659): %d\n" (window 600 659);
  (match TS.find_ge store 1800 with
  | Some (t, v) -> Printf.printf "first reading at/after 1800: ts=%d v=%d\n" t v
  | None -> assert false);
  (match (TS.min_binding store, TS.max_binding store) with
  | Some (lo, _), Some (hi, _) -> Printf.printf "span: [%d, %d]\n" lo hi
  | _ -> assert false);

  (* Concurrent phase: a compactor deletes odd timestamps (downsampling),
     a writer appends new readings, and two readers keep running windowed
     aggregates.  Readers never block and never see torn data; windows are
     weakly consistent (they reflect the racing updates). *)
  let stop = Atomic.make false in
  let queries = Atomic.make 0 in
  let compactor () =
    for t = 0 to 3599 do
      if t mod 2 = 1 then ignore (TS.delete store t)
    done
  in
  let writer () =
    for t = 3600 to 5399 do
      ignore (TS.insert store t (100 + (t mod 17)))
    done
  in
  let reader () =
    let rng = Lf_kernel.Splitmix.create 9 in
    while not (Atomic.get stop) do
      let lo = Lf_kernel.Splitmix.int rng 5000 in
      let s = window lo (lo + 120) in
      if s < 0 then assert false;
      Atomic.incr queries
    done
  in
  let readers = List.init 2 (fun _ -> Domain.spawn reader) in
  let ws = [ Domain.spawn compactor; Domain.spawn writer ] in
  List.iter Domain.join ws;
  Atomic.set stop true;
  List.iter Domain.join readers;
  TS.check_invariants store;

  Printf.printf "ran %d window queries concurrently with churn\n"
    (Atomic.get queries);
  Printf.printf "after compaction+append: %d readings, span [%d, %d]\n"
    (TS.length store)
    (fst (Option.get (TS.min_binding store)))
    (fst (Option.get (TS.max_binding store)));
  (* Every surviving old timestamp is even; new ones are contiguous. *)
  let bad =
    TS.fold_range store ~lo:0 ~hi:3599
      (fun acc t _ -> if t mod 2 = 1 then acc + 1 else acc)
      0
  in
  assert (bad = 0);
  print_endline "range_queries done"
