(* A tiny job scheduler on the lock-free priority queue (the application
   domain of Lotan-Shavit [13] and Sundell-Tsigas [14]).

   Producers submit jobs with priorities; worker domains repeatedly claim
   the highest-priority job with [pop_min].  Because the queue is built on
   the Fomitchev-Ruppert skip list, a stalled worker never blocks the
   others - we demonstrate that by making one worker extremely slow.

     dune exec examples/priority_scheduler.exe *)

module Q = Lf_pqueue.Pqueue.Stamped_atomic

type job = { id : int; label : string; work_us : int }

let () =
  let q = Q.create () in
  let produced = 400 in
  let done_count = Atomic.make 0 in
  let log = Atomic.make [] in

  let producer pid () =
    let rng = Lf_kernel.Splitmix.create (pid * 17) in
    for i = 0 to (produced / 2) - 1 do
      let id = (pid * 1000) + i in
      let prio = Lf_kernel.Splitmix.int rng 10 in
      let job =
        { id; label = Printf.sprintf "job-%d(p%d)" id prio; work_us = 50 }
      in
      Q.push q prio job;
      if i mod 7 = 0 then Domain.cpu_relax ()
    done
  in

  let worker ~slow () =
    let rec claim () =
      match Q.pop_min q with
      | Some (prio, job) ->
          (* "Execute" the job. *)
          if slow then
            for _ = 1 to 50_000 do
              Domain.cpu_relax ()
            done;
          let c = Atomic.fetch_and_add done_count 1 in
          if c < 10 then begin
            let rec push_log () =
              let old = Atomic.get log in
              if not (Atomic.compare_and_set log old ((prio, job.label) :: old))
              then push_log ()
            in
            push_log ()
          end;
          claim ()
      | None -> if Atomic.get done_count < produced then claim ()
    in
    claim ()
  in

  let ds =
    [
      Domain.spawn (producer 1);
      Domain.spawn (producer 2);
      Domain.spawn (worker ~slow:false);
      Domain.spawn (worker ~slow:false);
      Domain.spawn (worker ~slow:true) (* the straggler: cannot block anyone *);
    ]
  in
  List.iter Domain.join ds;
  Printf.printf "scheduled and completed %d jobs\n" (Atomic.get done_count);
  print_endline "first claims (priority, job):";
  List.iter
    (fun (p, l) -> Printf.printf "  p%d %s\n" p l)
    (List.rev (Atomic.get log));
  assert (Q.is_empty q);
  print_endline "priority_scheduler done"
