(* An in-memory KV store with concurrent readers and writers over the
   lock-free skip list: the read-mostly "index" workload that motivates
   lock-free dictionaries (readers never block, never retry, never take a
   lock, and scale independently of writer activity).

   The store keeps versioned values; a writer installs a fresh immutable
   record, a reader sees either the old or the new one - never a torn
   state, because the dictionary element is a single immutable box.

     dune exec examples/kv_store.exe *)

module SL = Lf_skiplist.Fr_skiplist.Atomic_string

type entry = { value : string; version : int; written_by : int }

let () =
  let store = SL.create () in
  let keyspace = List.init 200 (fun i -> Printf.sprintf "user:%04d" i) in

  (* Seed the store. *)
  List.iteri
    (fun i k ->
      ignore (SL.insert store k { value = "init"; version = 0; written_by = 0 });
      ignore i)
    keyspace;

  let stop = Atomic.make false in
  let reads = Atomic.make 0 in
  let torn = Atomic.make 0 in

  (* Writers: delete + reinsert with a bumped version (an "update" in this
     dictionary API). *)
  let writer wid () =
    let rng = Lf_kernel.Splitmix.create (wid * 31) in
    for v = 1 to 2_000 do
      let k = List.nth keyspace (Lf_kernel.Splitmix.int rng 200) in
      ignore (SL.delete store k);
      ignore
        (SL.insert store k
           { value = Printf.sprintf "v%d-by-%d" v wid; version = v; written_by = wid })
    done
  in

  (* Readers: scan hot keys; validate that every observed entry is
     internally consistent (value matches version + writer - a torn read
     would break this). *)
  let reader rid () =
    let rng = Lf_kernel.Splitmix.create (rid * 77) in
    while not (Atomic.get stop) do
      let k = List.nth keyspace (Lf_kernel.Splitmix.int rng 200) in
      (match SL.find store k with
      | Some e ->
          let expect =
            if e.version = 0 then "init"
            else Printf.sprintf "v%d-by-%d" e.version e.written_by
          in
          if e.value <> expect then Atomic.incr torn
      | None -> () (* mid-update: key momentarily absent, fine *));
      Atomic.incr reads
    done
  in

  let readers = List.init 2 (fun i -> Domain.spawn (reader (i + 1))) in
  let writers = List.init 2 (fun i -> Domain.spawn (writer (i + 1))) in
  List.iter Domain.join writers;
  Atomic.set stop true;
  List.iter Domain.join readers;
  SL.check_invariants store;
  Printf.printf "kv_store: %d reads concurrent with 4000 updates, %d torn\n"
    (Atomic.get reads) (Atomic.get torn);
  assert (Atomic.get torn = 0);
  Printf.printf "store holds %d keys, all internally consistent\n"
    (SL.length store);
  print_endline "kv_store done"
