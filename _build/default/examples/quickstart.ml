(* Quickstart: the lock-free dictionary API in five minutes.

   Creates a Fomitchev-Ruppert skip-list dictionary, hammers it from four
   domains, and shows the basic operations.  Run with:

     dune exec examples/quickstart.exe *)

module Dict = Lf_skiplist.Fr_skiplist.Atomic_string

let () =
  let t = Dict.create () in

  (* Basic operations. *)
  assert (Dict.insert t "ocaml" 1996);
  assert (Dict.insert t "skiplist" 1990);
  assert (Dict.insert t "lockfree" 2004);
  assert (not (Dict.insert t "ocaml" 0));
  (* duplicate *)
  assert (Dict.find t "skiplist" = Some 1990);
  assert (Dict.delete t "skiplist");
  assert (not (Dict.mem t "skiplist"));
  Printf.printf "sequential: %d entries: " (Dict.length t);
  List.iter (fun (k, v) -> Printf.printf "%s=%d " k v) (Dict.to_list t);
  print_newline ();

  (* Concurrent use: four domains inserting and deleting disjoint and
     overlapping key sets.  No locks anywhere; a domain can be preempted at
     any instruction without blocking the others. *)
  let keys i = List.init 500 (fun j -> Printf.sprintf "key-%d" ((j * 4) + i)) in
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            let mine = keys i in
            List.iter (fun k -> ignore (Dict.insert t k i)) mine;
            (* Everyone also fights over a shared hotspot. *)
            for _ = 1 to 1000 do
              ignore (Dict.insert t "hot" i);
              ignore (Dict.delete t "hot")
            done;
            (* And deletes half of its own keys again. *)
            List.iteri (fun j k -> if j mod 2 = 0 then ignore (Dict.delete t k)) mine))
  in
  List.iter Domain.join domains;
  Dict.check_invariants t;
  Printf.printf "concurrent: %d entries survive, structure valid\n"
    (Dict.length t);

  (* The same code runs against any implementation in the repository: swap
     [Lf_skiplist.Fr_skiplist.Atomic_string] for
     [Lf_list.Fr_list.Atomic_string] (the linked list) and everything above
     still holds. *)
  print_endline "quickstart done"
