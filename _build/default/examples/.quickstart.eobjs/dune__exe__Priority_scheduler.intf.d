examples/priority_scheduler.mli:
