examples/quickstart.ml: Domain Lf_skiplist List Printf
