examples/priority_scheduler.ml: Atomic Domain Lf_kernel Lf_pqueue List Printf
