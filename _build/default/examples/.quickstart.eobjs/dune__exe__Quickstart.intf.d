examples/quickstart.mli:
