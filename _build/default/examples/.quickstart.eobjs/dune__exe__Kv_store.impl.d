examples/kv_store.ml: Atomic Domain Lf_kernel Lf_skiplist List Printf
