examples/adversary_demo.ml: Array Lf_baselines Lf_dsim Lf_kernel Lf_list Printf
