examples/range_queries.ml: Atomic Domain Lf_kernel Lf_skiplist List Option Printf
