(* Tests for the baseline implementations the paper compares against:
   Harris [3], Michael [8], Valois [17], plus the lock-based and sequential
   baselines.  Oracle agreement, invariants under simulator schedules,
   linearizability, and domain stress. *)

module Sim = Lf_dsim.Sim

(* Static interface conformance. *)
module _ : Support.INT_DICT = Lf_baselines.Harris_list.Atomic_int
module _ : Support.INT_DICT = Lf_baselines.Michael_list.Atomic_int
module _ : Support.INT_DICT = Lf_baselines.Valois_list.Atomic_int
module _ : Support.INT_DICT = Lf_baselines.Coarse_list.Int
module _ : Support.INT_DICT = Lf_baselines.Lazy_list.Int
module _ : Support.INT_DICT = Lf_baselines.Seq_list.Int

(* Simulator instantiations. *)
module HarrisS = Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module MichaelS = Lf_baselines.Michael_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module ValoisS = Lf_baselines.Valois_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let oracle_tests =
  [
    Support.oracle_test (module Lf_baselines.Harris_list.Atomic_int);
    Support.oracle_test (module Lf_baselines.Michael_list.Atomic_int);
    Support.oracle_test (module Lf_baselines.Valois_list.Atomic_int);
    Support.oracle_test (module Lf_baselines.Coarse_list.Int);
    Support.oracle_test (module Lf_baselines.Lazy_list.Int);
    Support.oracle_test (module Lf_baselines.Seq_list.Int);
  ]

(* Run a random simulator schedule over closures and validate conservation:
   net successful inserts minus deletes equals the final length. *)
let sim_conservation name ~seeds ~create ~insert ~delete ~find ~length ~check =
  let test seed =
    let t = create () in
    let net = ref 0 in
    let body pid =
      let rng = Lf_kernel.Splitmix.create (seed + (977 * pid)) in
      for _ = 1 to 120 do
        let k = Lf_kernel.Splitmix.int rng 20 in
        match Lf_kernel.Splitmix.int rng 3 with
        | 0 -> if insert t k then incr net
        | 1 -> if delete t k then decr net
        | _ -> ignore (find t k)
      done
    in
    ignore (Sim.run ~policy:(Sim.Random seed) (Array.make 3 body));
    Sim.quiet (fun () ->
        check t;
        Alcotest.(check int)
          (Printf.sprintf "%s conservation (seed %d)" name seed)
          !net (length t))
  in
  List.iter test seeds

let test_harris_sim () =
  sim_conservation "harris" ~seeds:[ 1; 2; 3; 4; 5 ] ~create:HarrisS.create
    ~insert:(fun t k -> HarrisS.insert t k k)
    ~delete:HarrisS.delete ~find:HarrisS.mem ~length:HarrisS.length
    ~check:HarrisS.check_invariants

let test_michael_sim () =
  sim_conservation "michael" ~seeds:[ 1; 2; 3; 4; 5 ] ~create:MichaelS.create
    ~insert:(fun t k -> MichaelS.insert t k k)
    ~delete:MichaelS.delete ~find:MichaelS.mem ~length:MichaelS.length
    ~check:MichaelS.check_invariants

let test_valois_sim () =
  sim_conservation "valois" ~seeds:[ 1; 2; 3; 4; 5; 6; 7; 8 ]
    ~create:ValoisS.create
    ~insert:(fun t k -> ValoisS.insert t k k)
    ~delete:ValoisS.delete ~find:ValoisS.mem ~length:ValoisS.length
    ~check:ValoisS.check_invariants

let sim_linearizable name ops_of ~seeds =
  List.iter
    (fun seed ->
      let ops = ops_of () in
      let h =
        Lf_workload.Sim_driver.run_recorded ~policy:(Sim.Random seed) ~procs:3
          ~ops_per_proc:15 ~key_range:6
          ~mix:{ insert_pct = 40; delete_pct = 40 }
          ~seed ops
      in
      try Support.assert_linearizable h
      with e ->
        Printf.eprintf "%s seed %d\n" name seed;
        raise e)
    seeds

let test_harris_linearizable () =
  sim_linearizable "harris"
    (fun () ->
      let t = HarrisS.create () in
      Lf_workload.Sim_driver.
        {
          insert = (fun k -> HarrisS.insert t k k);
          delete = (fun k -> HarrisS.delete t k);
          find = (fun k -> HarrisS.mem t k);
        })
    ~seeds:[ 31; 32; 33; 34 ]

let test_michael_linearizable () =
  sim_linearizable "michael"
    (fun () ->
      let t = MichaelS.create () in
      Lf_workload.Sim_driver.
        {
          insert = (fun k -> MichaelS.insert t k k);
          delete = (fun k -> MichaelS.delete t k);
          find = (fun k -> MichaelS.mem t k);
        })
    ~seeds:[ 41; 42; 43; 44 ]

let test_valois_linearizable () =
  sim_linearizable "valois"
    (fun () ->
      let t = ValoisS.create () in
      Lf_workload.Sim_driver.
        {
          insert = (fun k -> ValoisS.insert t k k);
          delete = (fun k -> ValoisS.delete t k);
          find = (fun k -> ValoisS.mem t k);
        })
    ~seeds:[ 51; 52; 53; 54; 55; 56 ]

(* Valois structure: deletions leave auxiliary chains that traversals still
   cross correctly; quiescent collapse keeps the list usable. *)
let test_valois_aux_chains () =
  let module V = Lf_baselines.Valois_list.Atomic_int in
  let t = V.create () in
  for i = 1 to 50 do
    ignore (V.insert t i i)
  done;
  (* Delete a contiguous run; the region between 10 and 31 accumulates
     auxiliary nodes. *)
  for i = 11 to 30 do
    ignore (V.delete t i)
  done;
  Alcotest.(check int) "length" 30 (V.length t);
  Alcotest.(check bool) "walks over deleted region" true (V.mem t 31);
  Alcotest.(check bool) "insert into deleted region" true (V.insert t 20 20);
  Alcotest.(check bool) "find reinserted" true (V.mem t 20);
  V.check_invariants t

let domain_stress (module D : Support.INT_DICT) () =
  let t = D.create () in
  let net = Atomic.make 0 in
  let work did =
    let rng = Lf_kernel.Splitmix.create (did * 31) in
    let local = ref 0 in
    for _ = 1 to 10_000 do
      let k = Lf_kernel.Splitmix.int rng 32 in
      match Lf_kernel.Splitmix.int rng 3 with
      | 0 -> if D.insert t k k then incr local
      | 1 -> if D.delete t k then decr local
      | _ -> ignore (D.find t k)
    done;
    ignore (Atomic.fetch_and_add net !local)
  in
  let ds = List.init 3 (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  D.check_invariants t;
  Alcotest.(check int) (D.name ^ " conservation") (Atomic.get net) (D.length t)

let () =
  Alcotest.run "baselines"
    [
      ("oracle", oracle_tests);
      ( "sim conservation",
        [
          Alcotest.test_case "harris" `Quick test_harris_sim;
          Alcotest.test_case "michael" `Quick test_michael_sim;
          Alcotest.test_case "valois" `Quick test_valois_sim;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "harris" `Quick test_harris_linearizable;
          Alcotest.test_case "michael" `Quick test_michael_linearizable;
          Alcotest.test_case "valois" `Quick test_valois_linearizable;
        ] );
      ( "valois structure",
        [ Alcotest.test_case "aux chains" `Quick test_valois_aux_chains ] );
      ( "domain stress",
        [
          Alcotest.test_case "harris" `Slow
            (domain_stress (module Lf_baselines.Harris_list.Atomic_int));
          Alcotest.test_case "michael" `Slow
            (domain_stress (module Lf_baselines.Michael_list.Atomic_int));
          Alcotest.test_case "valois" `Slow
            (domain_stress (module Lf_baselines.Valois_list.Atomic_int));
          Alcotest.test_case "coarse" `Slow
            (domain_stress (module Lf_baselines.Coarse_list.Int));
          Alcotest.test_case "lazy" `Slow
            (domain_stress (module Lf_baselines.Lazy_list.Int));
        ] );
    ]
