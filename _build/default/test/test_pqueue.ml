(* Tests for the skip-list priority queue: sequential ordering, FIFO among
   equal priorities (stamped variant), uniqueness of concurrent claims, and
   producer/consumer conservation across domains. *)

module PQ = Lf_pqueue.Pqueue.Atomic_int
module SPQ = Lf_pqueue.Pqueue.Stamped_atomic

let test_sequential_order () =
  let q = PQ.create () in
  List.iter (fun p -> ignore (PQ.push q p (p * 10))) [ 4; 1; 3; 5; 2 ];
  Alcotest.(check int) "length" 5 (PQ.length q);
  Alcotest.(check bool) "peek" true (PQ.peek_min q = Some (1, 10));
  let out = ref [] in
  let rec drain () =
    match PQ.pop_min q with
    | None -> ()
    | Some (p, v) ->
        Alcotest.(check int) "payload" (p * 10) v;
        out := p :: !out;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5 ] (List.rev !out);
  Alcotest.(check bool) "empty" true (PQ.is_empty q)

let test_duplicate_priority_rejected_unstamped () =
  let q = PQ.create () in
  Alcotest.(check bool) "first" true (PQ.push q 1 0);
  Alcotest.(check bool) "dup" false (PQ.push q 1 1)

let test_stamped_fifo () =
  let q = SPQ.create () in
  SPQ.push q 5 "a";
  SPQ.push q 5 "b";
  SPQ.push q 1 "c";
  SPQ.push q 5 "d";
  let pops = List.init 4 (fun _ -> SPQ.pop_min q) in
  Alcotest.(check (list (option (pair int string))))
    "min first, FIFO among equals"
    [ Some (1, "c"); Some (5, "a"); Some (5, "b"); Some (5, "d") ]
    pops;
  Alcotest.(check bool) "drained" true (SPQ.is_empty q)

let test_stamped_interleaved () =
  let q = SPQ.create () in
  for i = 1 to 100 do
    SPQ.push q (i mod 10) i
  done;
  let prev = ref (-1) in
  for _ = 1 to 100 do
    match SPQ.pop_min q with
    | None -> Alcotest.fail "premature empty"
    | Some (p, _) ->
        if p < !prev then Alcotest.failf "priority went down: %d after %d" p !prev;
        prev := p
  done;
  Alcotest.(check bool) "empty" true (SPQ.pop_min q = None)

(* The heap baseline must agree with the lock-free queue on ordering. *)
let test_heap_baseline_agrees () =
  let module BH = Lf_baselines.Binary_heap in
  let h = BH.Locked.create () in
  let q = SPQ.create () in
  let rng = Lf_kernel.Splitmix.create 5 in
  for i = 1 to 500 do
    let p = Lf_kernel.Splitmix.int rng 50 in
    BH.Locked.push h p i;
    SPQ.push q p i
  done;
  BH.Locked.check_invariants h;
  for _ = 1 to 500 do
    let hp = match BH.Locked.pop_min h with Some (p, _) -> p | None -> -1 in
    let qp = match SPQ.pop_min q with Some (p, _) -> p | None -> -1 in
    Alcotest.(check int) "same priority order" hp qp
  done;
  Alcotest.(check bool) "both empty" true
    (BH.Locked.is_empty h && SPQ.is_empty q)

let test_heap_growth_and_order () =
  let module BH = Lf_baselines.Binary_heap.Seq in
  let h = BH.create () in
  for i = 1000 downto 1 do
    BH.push h i i
  done;
  BH.check_invariants h;
  Alcotest.(check int) "length" 1000 (BH.length h);
  for i = 1 to 1000 do
    match BH.pop_min h with
    | Some (p, _) -> Alcotest.(check int) "ascending" i p
    | None -> Alcotest.fail "premature empty"
  done

(* Exhaustive bounded-schedule check of pop_min claims: two processes pop
   from a 4-element queue under every schedule with <= 2 preemptions; every
   element must be claimed exactly once and pops never fabricate
   elements. *)
let test_pop_claims_exhaustive () =
  (* Directly on the simulator skip list (delete_min is the pqueue's pop),
     with explicit tower heights: Explore replays require deterministic
     scenarios, and Pqueue.push draws random heights from a global
     stream. *)
  let module Q = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem) in
  let mk () =
    let q = Q.create_with ~max_level:3 () in
    Lf_dsim.Sim.quiet (fun () ->
        List.iter
          (fun p -> ignore (Q.insert_with_height q ~height:((p mod 3) + 1) p (p * 10)))
          [ 1; 2; 3; 4 ]);
    let claims = Array.make 2 [] in
    let body pid =
      for _ = 1 to 2 do
        match Q.delete_min q with
        | Some (p, v) ->
            if v <> p * 10 then failwith "torn payload";
            claims.(pid) <- p :: claims.(pid)
        | None -> ()
      done
    in
    let check () =
      let all = List.sort compare (claims.(0) @ claims.(1)) in
      if all = [ 1; 2; 3; 4 ] then Ok ()
      else
        Error
          (Printf.sprintf "claims [%s]"
             (String.concat ";" (List.map string_of_int all)))
    in
    ([| body; body |], check)
  in
  let res = Lf_dsim.Explore.run ~max_preemptions:2 ~max_schedules:60_000 mk in
  (match res.failures with
  | [] -> ()
  | (prefix, msg) :: _ ->
      Alcotest.failf "pop_min: %s under [%s] (%d schedules)" msg
        (String.concat ";" (List.map string_of_int prefix))
        res.schedules_run);
  Alcotest.(check bool) "explored" true (res.schedules_run > 100)

(* Producers push unique payloads; consumers pop everything; the multiset of
   payloads must be preserved with no duplicates. *)
let test_producer_consumer_domains () =
  let q = SPQ.create () in
  let producers = 2 and items = 5_000 in
  let produced = producers * items in
  let popped = Atomic.make 0 in
  let seen = Array.make produced (Atomic.make 0) in
  Array.iteri (fun i _ -> seen.(i) <- Atomic.make 0) seen;
  let producer pid () =
    let rng = Lf_kernel.Splitmix.create pid in
    for i = 0 to items - 1 do
      let payload = (pid * items) + i in
      SPQ.push q (Lf_kernel.Splitmix.int rng 100) payload
    done
  in
  let consumer () =
    let continue_ = ref true in
    while !continue_ do
      match SPQ.pop_min q with
      | Some (_, payload) ->
          Atomic.incr seen.(payload);
          Atomic.incr popped
      | None -> if Atomic.get popped >= produced then continue_ := false
    done
  in
  let ds =
    List.init producers (fun p -> Domain.spawn (producer p))
    @ List.init 2 (fun _ -> Domain.spawn consumer)
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "all popped" produced (Atomic.get popped);
  Array.iteri
    (fun i c ->
      if Atomic.get c <> 1 then
        Alcotest.failf "payload %d seen %d times" i (Atomic.get c))
    seen;
  Alcotest.(check bool) "queue empty" true (SPQ.is_empty q)

let () =
  Alcotest.run "pqueue"
    [
      ( "sequential",
        [
          Alcotest.test_case "order" `Quick test_sequential_order;
          Alcotest.test_case "dup priority" `Quick
            test_duplicate_priority_rejected_unstamped;
          Alcotest.test_case "stamped fifo" `Quick test_stamped_fifo;
          Alcotest.test_case "stamped interleaved" `Quick
            test_stamped_interleaved;
          Alcotest.test_case "heap baseline agrees" `Quick
            test_heap_baseline_agrees;
          Alcotest.test_case "heap growth and order" `Quick
            test_heap_growth_and_order;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "pop claims exhaustive" `Slow
            test_pop_claims_exhaustive;
          Alcotest.test_case "producer/consumer" `Slow
            test_producer_consumer_domains;
        ] );
    ]
