(* Regression locks for the headline experiment shapes: miniature versions
   of EXP-1/2/3/9/13 run as assertions, so a change that silently destroys
   one of the paper's reproduced separations fails the test suite, not just
   a human reading bench output. *)

module Sim = Lf_dsim.Sim

let test_exp1_ratio_bounded () =
  (* Amortized bound: essential steps <= K * sum(n+c) with K well under 1
     for this counting. *)
  List.iter
    (fun (q, n0) ->
      let e, b, _ = Lf_scenarios.Scenarios.exp1_run ~q ~n0 ~seed:7 in
      let ratio = float_of_int e /. float_of_int (max 1 b) in
      if ratio > 1.0 then
        Alcotest.failf "EXP-1 ratio %.2f > 1 at q=%d n0=%d" ratio q n0)
    [ (2, 10); (4, 100); (8, 400) ]

let test_exp2_separation () =
  (* Harris recovery grows with n; FR stays constant. *)
  let fr_small, ha_small = Lf_scenarios.Scenarios.exp2_recovery ~n:32 in
  let fr_big, ha_big = Lf_scenarios.Scenarios.exp2_recovery ~n:256 in
  Alcotest.(check bool) "fr flat" true (fr_big <= fr_small *. 1.5);
  Alcotest.(check bool) "harris grows ~8x" true (ha_big >= ha_small *. 4.0);
  Alcotest.(check bool) "separation at n=256" true (ha_big >= fr_big *. 10.0)

let test_exp3_valois_linear () =
  let v_small, fr_small = Lf_scenarios.Scenarios.exp3_avg ~m:50 in
  let v_big, fr_big = Lf_scenarios.Scenarios.exp3_avg ~m:200 in
  Alcotest.(check bool) "valois grows ~4x" true (v_big >= v_small *. 2.5);
  Alcotest.(check bool) "fr flat" true (fr_big <= fr_small *. 1.5)

let test_exp9_helping_flat () =
  let nh_small, h_small = Lf_scenarios.Scenarios.exp9_avg ~m:25 in
  let nh_big, h_big = Lf_scenarios.Scenarios.exp9_avg ~m:100 in
  Alcotest.(check bool) "no-help grows" true (nh_big >= nh_small *. 2.0);
  Alcotest.(check bool) "help flat" true (h_big <= h_small *. 1.3)

let test_exp13_fraser_restarts () =
  let fr, fz = Lf_scenarios.Scenarios.exp13_recovery ~n:256 in
  Alcotest.(check bool) "fr local" true (fr <= 4.0);
  Alcotest.(check bool) "fraser restarts" true (fz >= fr *. 2.0)

(* Section 4's "contrived scenario": a search may descend into a node whose
   tower is deleted mid-descent, and must still produce correct results by
   traversing through the marked region. *)
module SLS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let test_descend_through_deleted_tower () =
  let t = SLS.create_with ~max_level:4 () in
  Sim.quiet (fun () ->
      ignore (SLS.insert_with_height t ~height:3 10 0);
      ignore (SLS.insert_with_height t ~height:1 20 0);
      ignore (SLS.insert_with_height t ~height:1 30 0));
  (* The searcher for 30 descends via tower 10 (the only tall one).  Park
     it mid-descent after a few steps, delete tower 10 entirely, resume:
     the searcher sits in a fully deleted tower and must still find 30. *)
  for park = 1 to 12 do
    let t' = SLS.create_with ~max_level:4 () in
    Sim.quiet (fun () ->
        ignore (SLS.insert_with_height t' ~height:3 10 0);
        ignore (SLS.insert_with_height t' ~height:1 20 0);
        ignore (SLS.insert_with_height t' ~height:1 30 0));
    let found = ref false in
    let searcher _ = found := SLS.mem t' 30 in
    let deleter _ = ignore (SLS.delete t' 10) in
    let parked = ref false in
    let policy st =
      if (not !parked) && Sim.total_steps st < park && not (Sim.is_finished st 0)
      then Some 0
      else begin
        parked := true;
        if not (Sim.is_finished st 1) then Some 1
        else if not (Sim.is_finished st 0) then Some 0
        else None
      end
    in
    ignore (Sim.run ~policy:(Sim.Custom policy) [| searcher; deleter |]);
    if not !found then Alcotest.failf "search missed key 30 (park=%d)" park;
    Sim.quiet (fun () ->
        Alcotest.(check (list (pair int int)))
          "final" [ (20, 0); (30, 0) ] (SLS.to_list t'))
  done;
  ignore t

let () =
  Alcotest.run "experiments"
    [
      ( "shape locks",
        [
          Alcotest.test_case "exp1 ratio bounded" `Slow test_exp1_ratio_bounded;
          Alcotest.test_case "exp2 harris vs fr" `Slow test_exp2_separation;
          Alcotest.test_case "exp3 valois linear" `Slow test_exp3_valois_linear;
          Alcotest.test_case "exp9 helping flat" `Slow test_exp9_helping_flat;
          Alcotest.test_case "exp13 fraser restarts" `Slow
            test_exp13_fraser_restarts;
        ] );
      ( "section 4 scenarios",
        [
          Alcotest.test_case "descend through deleted tower" `Quick
            test_descend_through_deleted_tower;
        ] );
    ]
