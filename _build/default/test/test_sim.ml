(* Tests of the deterministic simulator: step semantics, atomicity of C&S,
   scheduling policies, determinism, and the per-operation accounting that
   EXP-1 relies on. *)

module Sim = Lf_dsim.Sim
module SM = Lf_dsim.Sim_mem
module Ev = Lf_kernel.Mem_event

(* One process incrementing a cell with CAS: counts must be exact. *)
let test_step_counting () =
  let r = SM.make 0 in
  let body _pid =
    for _ = 1 to 10 do
      let v = SM.get r in
      let ok = SM.cas r ~kind:Ev.Other_cas ~expect:v (v + 1) in
      assert ok
    done
  in
  let res = Sim.run [| body |] in
  Alcotest.(check int) "value" 10 (Sim.quiet (fun () -> SM.get r));
  let c = res.per_proc.(0) in
  Alcotest.(check int) "reads" 10 c.Lf_kernel.Counters.reads;
  Alcotest.(check int) "cas attempts" 10 (Lf_kernel.Counters.total_cas_attempts c);
  Alcotest.(check int) "cas successes" 10
    (Lf_kernel.Counters.total_cas_successes c);
  (* 10 reads + 10 cas = 20 scheduling points. *)
  Alcotest.(check int) "steps" 20 res.steps

(* Two processes CAS-incrementing the same cell: total increments conserved,
   failures possible but value exact. *)
let test_cas_atomicity () =
  let r = SM.make 0 in
  let body _pid =
    let succeeded = ref 0 in
    while !succeeded < 50 do
      let v = SM.get r in
      if SM.cas r ~kind:Ev.Other_cas ~expect:v (v + 1) then incr succeeded
    done
  in
  List.iter
    (fun seed ->
      Sim.quiet (fun () -> SM.set r 0);
      ignore (Sim.run ~policy:(Sim.Random seed) [| body; body; body |]);
      Alcotest.(check int)
        (Printf.sprintf "value seed %d" seed)
        150
        (Sim.quiet (fun () -> SM.get r)))
    [ 1; 2; 3; 42 ]

let test_determinism () =
  let run seed =
    let r = SM.make 0 in
    let body pid =
      for _ = 1 to 20 do
        let v = SM.get r in
        ignore (SM.cas r ~kind:Ev.Other_cas ~expect:v (v + pid + 1))
      done
    in
    let res = Sim.run ~policy:(Sim.Random seed) [| body; body |] in
    (Sim.quiet (fun () -> SM.get r), res.steps,
     Array.map Lf_kernel.Counters.essential_steps res.per_proc)
  in
  Alcotest.(check bool) "same seed same outcome" true (run 5 = run 5);
  (* Different seeds should usually differ in the final value or counters. *)
  let differs = run 5 <> run 6 || run 7 <> run 8 in
  Alcotest.(check bool) "different seeds explore" true differs

let test_round_robin_interleaves () =
  (* Under round-robin, two incrementers alternate reads and fail half
     their CASes: with both reading before either CASes, conflicts are
     guaranteed. *)
  let r = SM.make 0 in
  let log = ref [] in
  let body pid =
    for _ = 1 to 3 do
      let v = SM.get r in
      log := (pid, `Read v) :: !log;
      ignore (SM.cas r ~kind:Ev.Other_cas ~expect:v (v + 1))
    done
  in
  ignore (Sim.run ~policy:Sim.Round_robin [| body; body |]);
  (* First two events must be reads by process 0 then process 1. *)
  match List.rev !log with
  | (0, `Read 0) :: (1, `Read 0) :: _ -> ()
  | _ -> Alcotest.fail "round robin did not alternate initial reads"

let test_custom_policy_serializes () =
  (* A custom policy that runs process 1 to completion before process 0. *)
  let r = SM.make 0 in
  let body pid =
    let v = SM.get r in
    ignore (SM.cas r ~kind:Ev.Other_cas ~expect:v ((10 * v) + pid + 1))
  in
  let policy st =
    if not (Sim.is_finished st 1) then Some 1
    else if not (Sim.is_finished st 0) then Some 0
    else None
  in
  ignore (Sim.run ~policy:(Sim.Custom policy) [| body; body |]);
  (* p1 runs fully first: 0 -> 2; then p0: 2 -> 21. *)
  Alcotest.(check int) "serialized" 21 (Sim.quiet (fun () -> SM.get r))

let test_custom_policy_sees_pending () =
  (* The adversary can observe what a process is about to do. *)
  let r = SM.make 0 in
  let observed_cas = ref false in
  let body _pid =
    let v = SM.get r in
    ignore (SM.cas r ~kind:Ev.Insertion ~expect:v 1)
  in
  let policy st =
    (match Sim.pending_kind st 0 with
    | Some (Lf_dsim.Sim_effect.Cas Ev.Insertion) -> observed_cas := true
    | _ -> ());
    if Sim.is_finished st 0 then None else Some 0
  in
  ignore (Sim.run ~policy:(Sim.Custom policy) [| body |]);
  Alcotest.(check bool) "saw pending insertion CAS" true !observed_cas

let test_op_accounting () =
  (* Two processes, each one op; the ops overlap under round-robin, so both
     should see c_max = 2; n is whatever the harness passes. *)
  let r = SM.make 0 in
  let body pid =
    Sim.op_begin ~n:(100 + pid);
    let v = SM.get r in
    ignore (SM.cas r ~kind:Ev.Other_cas ~expect:v (v + 1));
    Sim.op_end ()
  in
  let res = Sim.run ~policy:Sim.Round_robin [| body; body |] in
  Alcotest.(check int) "two ops" 2 (List.length res.ops);
  List.iter
    (fun (op : Sim.op_record) ->
      Alcotest.(check int) "contention" 2 op.c_max;
      Alcotest.(check bool) "completed" true op.completed;
      Alcotest.(check int) "essential = cas attempts" op.op_cas_attempts
        op.essential;
      Alcotest.(check int) "n recorded" (100 + op.op_pid) op.n_at_start)
    res.ops

let test_non_overlapping_ops_contention_one () =
  let body _pid =
    for _ = 1 to 3 do
      Sim.op_begin ~n:0;
      ignore (SM.get (SM.make 0));
      Sim.op_end ()
    done
  in
  (* Single process: contention is always 1. *)
  let res = Sim.run [| body |] in
  List.iter
    (fun (op : Sim.op_record) ->
      Alcotest.(check int) "c_max" 1 op.c_max)
    res.ops

let test_step_budget () =
  let r = SM.make 0 in
  let body _pid =
    while true do
      ignore (SM.get r)
    done
  in
  Alcotest.check_raises "budget" (Sim.Step_budget_exhausted 101) (fun () ->
      ignore (Sim.run ~max_steps:100 [| body |]))

let test_nested_op_begin_rejected () =
  let body _pid =
    Sim.op_begin ~n:0;
    Sim.op_begin ~n:0
  in
  Alcotest.check_raises "nested" (Failure "Sim: nested op_begin without op_end")
    (fun () -> ignore (Sim.run [| body |]))

let test_unfinished_ops_reported () =
  (* An op parked forever at a pending CAS still appears in the records. *)
  let r = SM.make 0 in
  let body0 _pid =
    Sim.op_begin ~n:7;
    let v = SM.get r in
    ignore (SM.cas r ~kind:Ev.Insertion ~expect:v 1);
    Sim.op_end ()
  in
  let policy st =
    match Sim.pending_kind st 0 with
    | Some (Lf_dsim.Sim_effect.Cas _) -> None (* stop before the CAS *)
    | _ -> if Sim.is_finished st 0 then None else Some 0
  in
  let res = Sim.run ~policy:(Sim.Custom policy) [| body0 |] in
  match res.ops with
  | [ op ] ->
      Alcotest.(check bool) "not completed" false op.completed;
      Alcotest.(check int) "n" 7 op.n_at_start
  | _ -> Alcotest.fail "expected exactly one (unfinished) op"

let test_writes_and_pause_counted () =
  let r = SM.make 0 in
  let body _pid =
    SM.set r 5;
    SM.pause 1;
    SM.event (Ev.User "hello")
  in
  let res = Sim.run [| body |] in
  Alcotest.(check int) "writes" 1 res.per_proc.(0).Lf_kernel.Counters.writes;
  (* set + pause are scheduling points; the note is not. *)
  Alcotest.(check int) "steps" 2 res.steps;
  Alcotest.(check int) "value" 5 (Sim.quiet (fun () -> SM.get r))

let test_trace_recorder () =
  let r = SM.make 0 in
  let body _pid =
    let v = SM.get r in
    ignore (SM.cas r ~kind:Ev.Insertion ~expect:v (v + 1))
  in
  let tr = Lf_dsim.Trace.create ~capacity:8 () in
  ignore (Sim.run ~on_step:(Lf_dsim.Trace.on_step tr) [| body; body |]);
  Alcotest.(check int) "all steps recorded" 4 (Lf_dsim.Trace.total tr);
  let kinds =
    List.map (fun (e : Lf_dsim.Trace.entry) -> e.t_kind) (Lf_dsim.Trace.entries tr)
  in
  Alcotest.(check int) "reads" 2
    (List.length (List.filter (( = ) Lf_dsim.Sim_effect.Read) kinds));
  Alcotest.(check int) "cas" 2
    (List.length
       (List.filter (( = ) (Lf_dsim.Sim_effect.Cas Ev.Insertion)) kinds));
  (* Ring behaviour: a long run keeps only the last [capacity]. *)
  let tr2 = Lf_dsim.Trace.create ~capacity:4 () in
  let busy _pid =
    for _ = 1 to 10 do
      ignore (SM.get r)
    done
  in
  ignore (Sim.run ~on_step:(Lf_dsim.Trace.on_step tr2) [| busy |]);
  Alcotest.(check int) "total" 10 (Lf_dsim.Trace.total tr2);
  Alcotest.(check int) "buffered" 4 (List.length (Lf_dsim.Trace.entries tr2));
  Alcotest.(check bool) "renders" true
    (String.length (Lf_dsim.Trace.to_string tr2) > 0)

let test_quiet_passthrough () =
  let r = SM.make 3 in
  let v =
    Sim.quiet (fun () ->
        let v = SM.get r in
        ignore (SM.cas r ~kind:Ev.Other_cas ~expect:v 9);
        SM.get r)
  in
  Alcotest.(check int) "quiet executes" 9 v

let () =
  Alcotest.run "dsim"
    [
      ( "engine",
        [
          Alcotest.test_case "step counting" `Quick test_step_counting;
          Alcotest.test_case "cas atomicity" `Quick test_cas_atomicity;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "writes and pause" `Quick
            test_writes_and_pause_counted;
          Alcotest.test_case "quiet" `Quick test_quiet_passthrough;
          Alcotest.test_case "trace recorder" `Quick test_trace_recorder;
          Alcotest.test_case "step budget" `Quick test_step_budget;
        ] );
      ( "policies",
        [
          Alcotest.test_case "round robin" `Quick test_round_robin_interleaves;
          Alcotest.test_case "custom serializes" `Quick
            test_custom_policy_serializes;
          Alcotest.test_case "custom sees pending" `Quick
            test_custom_policy_sees_pending;
        ] );
      ( "op accounting",
        [
          Alcotest.test_case "overlap contention" `Quick test_op_accounting;
          Alcotest.test_case "solo contention" `Quick
            test_non_overlapping_ops_contention_one;
          Alcotest.test_case "nested rejected" `Quick
            test_nested_op_begin_rejected;
          Alcotest.test_case "unfinished reported" `Quick
            test_unfinished_ops_reported;
        ] );
    ]
