(* Lock-freedom under crash failures (the paper's introduction: "delays or
   failures of individual processes do not block the progress of other
   processes in the system").

   The simulator makes this testable systematically: park a victim process
   forever at step k of its operation - for EVERY k - and require that the
   surviving processes complete their own operations, that the final
   structure is valid, and that the combined history (with the victim's
   pending operation removed or completed-by-helping) stays consistent.

   A parked process models a crashed one exactly: it stops taking steps but
   any flag/mark it has already installed stays behind, which is precisely
   the state helping must recover from. *)

module Sim = Lf_dsim.Sim
module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module SLS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module HarrisS = Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

(* Run [victim] and [survivor] under a policy that parks the victim forever
   after it has taken [k] steps; the survivor must finish.  Returns whether
   the victim had already finished by then, plus the survivor steps. *)
let run_with_crash ~k ~victim ~survivor ~validate =
  let policy st =
    let victim_steps =
      let c = Sim.counters st 0 in
      c.Lf_kernel.Counters.reads + c.Lf_kernel.Counters.writes
      + Lf_kernel.Counters.total_cas_attempts c
    in
    if (not (Sim.is_finished st 0)) && victim_steps < k then Some 0
    else if not (Sim.is_finished st 1) then Some 1
    else None
  in
  let res =
    Sim.run ~policy:(Sim.Custom policy) ~max_steps:2_000_000
      [| victim; survivor |]
  in
  validate ();
  ignore res

(* How many steps does the victim's op take when run alone?  Used to bound
   the crash-point sweep. *)
let steps_alone body =
  let res = Sim.run [| body |] in
  res.steps

let test_fr_list_deleter_crashes_everywhere () =
  (* Victim deletes 20 from [10;20;30]; survivor then inserts 15 and 25 and
     searches.  Whatever step the victim dies at, the survivor must
     complete, and key 20 must be either present (deletion never reached
     its linearization point) or absent - with the structure always
     traversable and sorted. *)
  let build () =
    let t = FRS.create () in
    ignore
      (Sim.run
         [| (fun _ -> List.iter (fun k -> ignore (FRS.insert t k 0)) [ 10; 20; 30 ]) |]);
    t
  in
  let total = steps_alone (fun _ -> ignore (FRS.delete (build ()) 20)) in
  Alcotest.(check bool) "victim op takes steps" true (total > 5);
  for k = 0 to total do
    let t = build () in
    let victim _ = ignore (FRS.delete t 20) in
    let survivor _ =
      ignore (FRS.insert t 15 1);
      ignore (FRS.insert t 25 1);
      ignore (FRS.mem t 30)
    in
    run_with_crash ~k ~victim ~survivor ~validate:(fun () ->
        Sim.quiet (fun () ->
            (* Survivor completed: its keys are present; list stays sorted
               and traversable.  INV 3/4 still hold on whatever is left. *)
            let l = FRS.to_list t in
            if not (List.mem_assoc 15 l && List.mem_assoc 25 l) then
              Alcotest.failf "crash at %d: survivor lost inserts" k;
            if not (List.mem_assoc 10 l && List.mem_assoc 30 l) then
              Alcotest.failf "crash at %d: bystander keys lost" k;
            match FRS.Debug.check_now t with
            | Ok () -> ()
            | Error m -> Alcotest.failf "crash at %d: %s" k m))
  done

let test_fr_list_inserter_crashes_everywhere () =
  let build () =
    let t = FRS.create () in
    ignore
      (Sim.run
         [| (fun _ -> List.iter (fun kk -> ignore (FRS.insert t kk 0)) [ 10; 30 ]) |]);
    t
  in
  let total = steps_alone (fun _ -> ignore (FRS.insert (build ()) 20 9)) in
  for k = 0 to total do
    let t = build () in
    let victim _ = ignore (FRS.insert t 20 9) in
    let survivor _ =
      ignore (FRS.delete t 10);
      ignore (FRS.insert t 5 1);
      ignore (FRS.mem t 20)
    in
    run_with_crash ~k ~victim ~survivor ~validate:(fun () ->
        Sim.quiet (fun () ->
            let l = FRS.to_list t in
            if not (List.mem_assoc 5 l) then
              Alcotest.failf "crash at %d: survivor insert lost" k;
            if List.mem_assoc 10 l then
              Alcotest.failf "crash at %d: survivor delete lost" k;
            match FRS.Debug.check_now t with
            | Ok () -> ()
            | Error m -> Alcotest.failf "crash at %d: %s" k m))
  done

(* The critical case: the victim dies holding a FLAG.  Survivors must help
   the deletion through and unflag - the flag can never become a lock. *)
let test_crashed_flag_holder_cannot_block () =
  let t = FRS.create () in
  ignore
    (Sim.run
       [| (fun _ -> List.iter (fun k -> ignore (FRS.insert t k 0)) [ 10; 20 ]) |]);
  let victim _ = ignore (FRS.delete t 20) in
  let survivor _ =
    (* Touches the flagged region directly. *)
    ignore (FRS.insert t 15 1);
    ignore (FRS.delete t 10)
  in
  let parked = ref false in
  let policy st =
    if not !parked then begin
      let c = Sim.counters st 0 in
      if
        c.Lf_kernel.Counters.cas_successes.(Lf_kernel.Counters.kind_index
                                              Lf_kernel.Mem_event.Flagging)
        >= 1
      then begin
        parked := true;
        Some 1
      end
      else if Sim.is_finished st 0 then None
      else Some 0
    end
    else if not (Sim.is_finished st 1) then Some 1
    else None
  in
  ignore (Sim.run ~policy:(Sim.Custom policy) [| victim; survivor |]);
  Sim.quiet (fun () ->
      Alcotest.(check (list (pair int int))) "survivor did everything"
        [ (15, 1) ] (FRS.to_list t);
      FRS.check_invariants t)

let test_skiplist_deleter_crashes_everywhere () =
  let build () =
    let t = SLS.create_with ~max_level:4 () in
    ignore
      (Sim.run
         [|
           (fun _ ->
             ignore (SLS.insert_with_height t ~height:3 10 0);
             ignore (SLS.insert_with_height t ~height:4 20 0);
             ignore (SLS.insert_with_height t ~height:2 30 0));
         |]);
    t
  in
  let total = steps_alone (fun _ -> ignore (SLS.delete (build ()) 20)) in
  (* Sweep a sample of crash points (every step is slow for tall towers). *)
  let k = ref 0 in
  while !k <= total do
    let t = build () in
    let victim _ = ignore (SLS.delete t 20) in
    let survivor _ =
      ignore (SLS.insert_with_height t ~height:3 15 1);
      ignore (SLS.insert_with_height t ~height:2 25 1);
      ignore (SLS.mem t 30)
    in
    run_with_crash ~k:!k ~victim ~survivor ~validate:(fun () ->
        Sim.quiet (fun () ->
            let l = SLS.to_list t in
            if not (List.mem_assoc 15 l && List.mem_assoc 25 l) then
              Alcotest.failf "crash at %d: survivor inserts lost" !k;
            if not (List.mem_assoc 10 l && List.mem_assoc 30 l) then
              Alcotest.failf "crash at %d: bystanders lost" !k));
    k := !k + 1
  done

let test_harris_crashes_everywhere () =
  (* Harris is also lock-free; the suite doubles as a baseline sanity
     check. *)
  let build () =
    let t = HarrisS.create () in
    ignore
      (Sim.run
         [| (fun _ -> List.iter (fun k -> ignore (HarrisS.insert t k 0)) [ 10; 20; 30 ]) |]);
    t
  in
  let total = steps_alone (fun _ -> ignore (HarrisS.delete (build ()) 20)) in
  for k = 0 to total do
    let t = build () in
    let victim _ = ignore (HarrisS.delete t 20) in
    let survivor _ =
      ignore (HarrisS.insert t 15 1);
      ignore (HarrisS.insert t 25 1)
    in
    run_with_crash ~k ~victim ~survivor ~validate:(fun () ->
        Sim.quiet (fun () ->
            let l = HarrisS.to_list t in
            if not (List.mem_assoc 15 l && List.mem_assoc 25 l) then
              Alcotest.failf "crash at %d: survivor inserts lost" k))
  done

module FraserS =
  Lf_skiplist.Fraser_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let test_fraser_deleter_crashes_everywhere () =
  let build () =
    let t = FraserS.create_with ~max_level:4 () in
    Sim.quiet (fun () ->
        ignore (FraserS.insert_with_height t ~height:3 10 0);
        ignore (FraserS.insert_with_height t ~height:4 20 0);
        ignore (FraserS.insert_with_height t ~height:2 30 0));
    t
  in
  let total = steps_alone (fun _ -> ignore (FraserS.delete (build ()) 20)) in
  for k = 0 to total do
    let t = build () in
    let victim _ = ignore (FraserS.delete t 20) in
    let survivor _ =
      ignore (FraserS.insert_with_height t ~height:2 15 1);
      ignore (FraserS.insert_with_height t ~height:3 25 1);
      ignore (FraserS.mem t 30)
    in
    run_with_crash ~k ~victim ~survivor ~validate:(fun () ->
        Sim.quiet (fun () ->
            let l = FraserS.to_list t in
            if not (List.mem_assoc 15 l && List.mem_assoc 25 l) then
              Alcotest.failf "crash at %d: survivor inserts lost" k;
            if not (List.mem_assoc 10 l && List.mem_assoc 30 l) then
              Alcotest.failf "crash at %d: bystanders lost" k))
  done

(* Random crash storms: several victims die at random points mid-operation
   while survivors keep going; conservation holds among completed ops. *)
let test_random_crash_storm () =
  List.iter
    (fun seed ->
      let t = FRS.create () in
      let net = ref 0 in
      let completed = ref 0 in
      let victim pid =
        let rng = Lf_kernel.Splitmix.create (seed + pid) in
        for _ = 1 to 20 do
          let k = Lf_kernel.Splitmix.int rng 16 in
          if Lf_kernel.Splitmix.bool rng then begin
            if FRS.insert t k pid then incr net
          end
          else if FRS.delete t k then decr net;
          incr completed
        done
      in
      let rng = Lf_kernel.Splitmix.create (seed * 31) in
      let kill_at = Array.init 2 (fun _ -> 30 + Lf_kernel.Splitmix.int rng 200) in
      let policy st =
        (* pids 0,1 are victims killed after kill_at.(pid) steps; 2,3 run
           to completion. *)
        let steps pid =
          let c = Sim.counters st pid in
          c.Lf_kernel.Counters.reads + c.Lf_kernel.Counters.writes
          + Lf_kernel.Counters.total_cas_attempts c
        in
        let alive pid =
          (not (Sim.is_finished st pid)) && (pid >= 2 || steps pid < kill_at.(pid))
        in
        let choices = List.filter alive [ 0; 1; 2; 3 ] in
        match choices with
        | [] -> None
        | l -> Some (List.nth l (Lf_kernel.Splitmix.int rng (List.length l)))
      in
      (* The two survivors update [net]/[completed] only for their own ops;
         victims' partial ops may or may not have taken effect, so we only
         check structural health, not conservation. *)
      ignore (Sim.run ~policy:(Sim.Custom policy) (Array.make 4 victim));
      ignore !net;
      ignore !completed;
      Sim.quiet (fun () ->
          match FRS.Debug.check_now t with
          | Ok () -> ()
          | Error m -> Alcotest.failf "storm seed %d: %s" seed m))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let () =
  Alcotest.run "crash"
    [
      ( "fr-list",
        [
          Alcotest.test_case "deleter dies at every step" `Quick
            test_fr_list_deleter_crashes_everywhere;
          Alcotest.test_case "inserter dies at every step" `Quick
            test_fr_list_inserter_crashes_everywhere;
          Alcotest.test_case "crashed flag holder" `Quick
            test_crashed_flag_holder_cannot_block;
        ] );
      ( "fr-skiplist",
        [
          Alcotest.test_case "deleter dies at every step" `Quick
            test_skiplist_deleter_crashes_everywhere;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "harris deleter dies at every step" `Quick
            test_harris_crashes_everywhere;
          Alcotest.test_case "fraser deleter dies at every step" `Quick
            test_fraser_deleter_crashes_everywhere;
        ] );
      ( "storm",
        [ Alcotest.test_case "random crash storms" `Quick test_random_crash_storm ] );
    ]
