(* Tests for the workload drivers: the throughput runner, the recorded
   bursts, and the simulator driver that feeds EXP-1. *)

module Sim = Lf_dsim.Sim
module FRS = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let test_throughput_smoke () =
  let r =
    Lf_workload.Runner.run_throughput
      (module Lf_list.Fr_list.Atomic_int)
      ~domains:2 ~ops_per_domain:5_000 ~key_range:128
      ~mix:Lf_workload.Opgen.mixed ~seed:3 ()
  in
  Alcotest.(check int) "total ops" 10_000 r.total_ops;
  Alcotest.(check bool) "positive rate" true (r.ops_per_s > 0.0);
  Alcotest.(check string) "impl name" "fr-list" r.impl

let test_recorded_shape () =
  let h =
    Lf_workload.Runner.run_recorded
      (module Lf_list.Fr_list.Atomic_int)
      ~domains:2 ~ops_per_domain:10 ~key_range:8
      ~mix:Lf_workload.Opgen.write_heavy ~seed:5 ()
  in
  Alcotest.(check int) "entry count" 20 (List.length h);
  List.iter
    (fun (e : Lf_lin.History.entry) ->
      if e.inv >= e.ret then Alcotest.fail "inv must precede ret")
    h;
  Support.assert_linearizable h

let sim_ops t =
  Lf_workload.Sim_driver.
    {
      insert = (fun k -> FRS.insert t k k);
      delete = (fun k -> FRS.delete t k);
      find = (fun k -> FRS.mem t k);
    }

let test_prefill_exact () =
  let t = FRS.create () in
  let n = Lf_workload.Sim_driver.prefill ~key_range:100 ~count:40 ~seed:1 (sim_ops t) in
  Alcotest.(check int) "prefill count" 40 n;
  Alcotest.(check int) "length" 40 (Sim.quiet (fun () -> FRS.length t))

let test_run_mixed_records () =
  let t = FRS.create () in
  let res =
    Lf_workload.Sim_driver.run_mixed ~policy:(Sim.Random 2) ~procs:3
      ~ops_per_proc:50 ~key_range:16
      ~mix:{ insert_pct = 40; delete_pct = 30 }
      ~seed:7 (sim_ops t)
  in
  Alcotest.(check int) "op count" 150 (List.length res.ops);
  List.iter
    (fun (op : Sim.op_record) ->
      if op.n_at_start < 0 || op.n_at_start > 16 then
        Alcotest.failf "n(S)=%d out of range" op.n_at_start;
      if op.c_max < 1 || op.c_max > 3 then
        Alcotest.failf "c(S)=%d out of range" op.c_max;
      if not op.completed then Alcotest.fail "op should have completed")
    res.ops;
  Alcotest.(check bool) "essential positive" true (Sim.total_essential res > 0);
  Alcotest.(check bool) "bound positive" true (Sim.bound_sum res > 0)

let test_sim_driver_deterministic () =
  let run () =
    let t = FRS.create () in
    let res =
      Lf_workload.Sim_driver.run_mixed ~policy:(Sim.Random 9) ~procs:2
        ~ops_per_proc:40 ~key_range:8
        ~mix:{ insert_pct = 50; delete_pct = 30 }
        ~seed:11 (sim_ops t)
    in
    (res.steps, Sim.total_essential res, Sim.bound_sum res,
     Sim.quiet (fun () -> FRS.to_list t))
  in
  Alcotest.(check bool) "deterministic" true (run () = run ())

let () =
  Alcotest.run "workload"
    [
      ( "runner",
        [
          Alcotest.test_case "throughput smoke" `Quick test_throughput_smoke;
          Alcotest.test_case "recorded shape" `Quick test_recorded_shape;
        ] );
      ( "sim driver",
        [
          Alcotest.test_case "prefill" `Quick test_prefill_exact;
          Alcotest.test_case "mixed records" `Quick test_run_mixed_records;
          Alcotest.test_case "deterministic" `Quick
            test_sim_driver_deterministic;
        ] );
    ]
