(* Tests of the linearizability checker itself: it must accept legal
   concurrent histories (including those requiring reordering against
   invocation order) and reject the classic violations. *)

open Lf_lin

let e pid op ok inv ret = { History.pid; op; ok; inv; ret }

let check h = Checker.check h
let lin = Alcotest.testable (Fmt.of_to_string (function
    | Checker.Linearizable -> "Linearizable"
    | Checker.Not_linearizable -> "Not_linearizable"))
    ( = )

let test_empty () = Alcotest.check lin "empty" Checker.Linearizable (check [])

let test_sequential_valid () =
  let h =
    [
      e 0 (Insert 1) true 0 1;
      e 0 (Find 1) true 2 3;
      e 0 (Delete 1) true 4 5;
      e 0 (Find 1) false 6 7;
      e 0 (Delete 1) false 8 9;
      e 0 (Insert 1) true 10 11;
    ]
  in
  Alcotest.check lin "sequential" Checker.Linearizable (check h)

let test_requires_reordering () =
  (* find(1)=true completes before insert(1) returns, but they overlap:
     legal by linearizing the insert first. *)
  let h = [ e 0 (Insert 1) true 0 5; e 1 (Find 1) true 1 2 ] in
  Alcotest.check lin "overlap reorder" Checker.Linearizable (check h)

let test_rejects_find_of_never_inserted () =
  let h = [ e 0 (Find 7) true 0 1 ] in
  Alcotest.check lin "phantom find" Checker.Not_linearizable (check h)

let test_rejects_precedence_violation () =
  (* insert(1) fully precedes find(1)=false: illegal. *)
  let h = [ e 0 (Insert 1) true 0 1; e 1 (Find 1) false 2 3 ] in
  Alcotest.check lin "stale find" Checker.Not_linearizable (check h)

let test_rejects_double_insert () =
  let h = [ e 0 (Insert 1) true 0 1; e 1 (Insert 1) true 2 3 ] in
  Alcotest.check lin "double insert" Checker.Not_linearizable (check h)

let test_rejects_double_delete () =
  (* Two successful deletes racing over one insert. *)
  let h =
    [
      e 0 (Insert 1) true 0 1;
      e 1 (Delete 1) true 2 5;
      e 2 (Delete 1) true 3 4;
    ]
  in
  Alcotest.check lin "double delete" Checker.Not_linearizable (check h)

let test_accepts_racing_deletes_one_winner () =
  let h =
    [
      e 0 (Insert 1) true 0 1;
      e 1 (Delete 1) true 2 5;
      e 2 (Delete 1) false 3 4;
    ]
  in
  Alcotest.check lin "one winner" Checker.Linearizable (check h)

let test_rejects_lost_insert () =
  (* insert succeeded and nothing deleted the key, yet a later find misses
     it. *)
  let h =
    [
      e 0 (Insert 3) true 0 1;
      e 1 (Find 3) true 2 3;
      e 1 (Find 3) false 4 5;
    ]
  in
  Alcotest.check lin "lost insert" Checker.Not_linearizable (check h)

let test_concurrent_soup_valid () =
  (* Three processes over two keys, all overlapping; constructed from an
     actual interleaving so it must be accepted. *)
  let h =
    [
      e 0 (Insert 1) true 0 7;
      e 1 (Insert 2) true 1 6;
      e 2 (Find 1) false 2 3;
      (* linearized before insert 1 *)
      e 2 (Find 2) true 4 5;
      (* insert 2 linearized within [1,6] before this *)
      e 0 (Delete 2) true 8 9;
      e 1 (Find 2) false 10 11;
    ]
  in
  Alcotest.check lin "soup" Checker.Linearizable (check h)

let test_init_state () =
  let h = [ e 0 (Find 5) true 0 1 ] in
  Alcotest.check lin "with init" Checker.Linearizable
    (Checker.check ~init:(Checker.IntSet.singleton 5) h)

let test_history_too_long_rejected () =
  let h = List.init 63 (fun i -> e 0 (Insert i) true (2 * i) ((2 * i) + 1)) in
  Alcotest.check_raises "63 entries"
    (Invalid_argument "Checker.check: history longer than 62 entries")
    (fun () -> ignore (check h))

(* Property: any correctly-applied sequential history is linearizable, and
   flipping the result of one find in it is not. *)
let sequential_prop =
  Support.qcheck ~count:100 "sequential histories linearizable"
    (Support.ops_gen ~key_range:8 ~len:40)
    (fun script ->
      let state = Hashtbl.create 16 in
      let t = ref 0 in
      let entries =
        List.map
          (fun (tag, k) ->
            let inv = !t in
            incr t;
            let ret = !t in
            incr t;
            match tag with
            | 0 ->
                let ok = not (Hashtbl.mem state k) in
                if ok then Hashtbl.replace state k ();
                e 0 (Insert k) ok inv ret
            | 1 ->
                let ok = Hashtbl.mem state k in
                Hashtbl.remove state k;
                e 0 (Delete k) ok inv ret
            | _ -> e 0 (Find k) (Hashtbl.mem state k) inv ret)
          script
      in
      if List.length entries > 62 then true
      else
        let ok = check entries = Checker.Linearizable in
        (* Flip the last find, if any: must become non-linearizable. *)
        let rec flip_last acc = function
          | [] -> None
          | ({ History.op = Find _; _ } as x) :: tl ->
              Some (List.rev_append tl ({ x with ok = not x.ok } :: acc))
          | x :: tl -> flip_last (x :: acc) tl
        in
        let flipped_rejected =
          match flip_last [] (List.rev entries) with
          | None -> true
          | Some h' -> check h' = Checker.Not_linearizable
        in
        ok && flipped_rejected)

let () =
  Alcotest.run "lin"
    [
      ( "checker",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "sequential valid" `Quick test_sequential_valid;
          Alcotest.test_case "requires reordering" `Quick
            test_requires_reordering;
          Alcotest.test_case "phantom find" `Quick
            test_rejects_find_of_never_inserted;
          Alcotest.test_case "precedence violation" `Quick
            test_rejects_precedence_violation;
          Alcotest.test_case "double insert" `Quick test_rejects_double_insert;
          Alcotest.test_case "double delete" `Quick test_rejects_double_delete;
          Alcotest.test_case "racing deletes one winner" `Quick
            test_accepts_racing_deletes_one_winner;
          Alcotest.test_case "lost insert" `Quick test_rejects_lost_insert;
          Alcotest.test_case "concurrent soup" `Quick
            test_concurrent_soup_valid;
          Alcotest.test_case "init state" `Quick test_init_state;
          Alcotest.test_case "length limit" `Quick
            test_history_too_long_rejected;
          sequential_prop;
        ] );
    ]
