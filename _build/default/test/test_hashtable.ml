(* Tests for the lock-free hash table (Michael-style list buckets). *)

module H = Lf_hashtable.Atomic_int
module HS = Lf_hashtable.Make (Lf_hashtable.Int_key) (Lf_dsim.Sim_mem)
module Sim = Lf_dsim.Sim

module _ : Support.INT_DICT = Lf_hashtable.Atomic_int

let oracle = Support.oracle_test (module H)

let test_bucket_count_validation () =
  Alcotest.check_raises "not a power of two"
    (Invalid_argument "Lf_hashtable.create_with: buckets must be a power of two")
    (fun () -> ignore (H.create_with ~buckets:48 ()));
  ignore (H.create_with ~buckets:1 ());
  ignore (H.create_with ~buckets:256 ())

let test_spread_and_order () =
  let t = H.create_with ~buckets:8 () in
  for i = 0 to 999 do
    ignore (H.insert t i (i * 2))
  done;
  Alcotest.(check int) "length" 1000 (H.length t);
  (* to_list is globally sorted even though buckets are hash-ordered. *)
  let l = H.to_list t in
  Alcotest.(check int) "snapshot size" 1000 (List.length l);
  List.iteri (fun i (k, v) -> assert (k = i && v = 2 * i)) l;
  H.check_invariants t

let test_string_keys () =
  let module S = Lf_hashtable.Atomic_string in
  let t = S.create () in
  assert (S.insert t "alpha" 1);
  assert (S.insert t "beta" 2);
  assert (not (S.insert t "alpha" 9));
  Alcotest.(check (option int)) "find" (Some 2) (S.find t "beta");
  assert (S.delete t "alpha");
  Alcotest.(check int) "length" 1 (S.length t)

let test_sim_linearizable () =
  List.iter
    (fun seed ->
      let t = HS.create_with ~buckets:4 () in
      let ops =
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> HS.insert t k k);
            delete = (fun k -> HS.delete t k);
            find = (fun k -> HS.mem t k);
          }
      in
      let h =
        Lf_workload.Sim_driver.run_recorded ~policy:(Sim.Random seed) ~procs:3
          ~ops_per_proc:15 ~key_range:8
          ~mix:{ insert_pct = 40; delete_pct = 40 }
          ~seed ops
      in
      Support.assert_linearizable h)
    [ 81; 82; 83; 84 ]

let test_domain_stress () =
  let t = H.create_with ~buckets:16 () in
  let net = Atomic.make 0 in
  let work did =
    let rng = Lf_kernel.Splitmix.create (did * 53) in
    let local = ref 0 in
    for _ = 1 to 20_000 do
      let k = Lf_kernel.Splitmix.int rng 512 in
      match Lf_kernel.Splitmix.int rng 3 with
      | 0 -> if H.insert t k k then incr local
      | 1 -> if H.delete t k then decr local
      | _ -> ignore (H.find t k)
    done;
    ignore (Atomic.fetch_and_add net !local)
  in
  let ds = List.init 3 (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  H.check_invariants t;
  Alcotest.(check int) "conservation" (Atomic.get net) (H.length t)

let () =
  Alcotest.run "hashtable"
    [
      ( "semantics",
        [
          oracle;
          Alcotest.test_case "bucket validation" `Quick
            test_bucket_count_validation;
          Alcotest.test_case "spread and order" `Quick test_spread_and_order;
          Alcotest.test_case "string keys" `Quick test_string_keys;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "sim linearizable" `Quick test_sim_linearizable;
          Alcotest.test_case "domain stress" `Slow test_domain_stress;
        ] );
    ]
