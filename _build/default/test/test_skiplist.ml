(* Tests for the skip lists: Pugh's sequential oracle, the lock-free
   Fomitchev-Ruppert skip list (tower structure, interrupted insertions,
   superfluous-node helping, delete_min), the locked baseline, and the
   height distribution of Section 4's last paragraph. *)

module SL = Lf_skiplist.Fr_skiplist.Atomic_int
module SLS = Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)
module Pugh = Lf_skiplist.Seq_skiplist.Int
module Sim = Lf_dsim.Sim
module Ev = Lf_kernel.Mem_event

module _ : Support.INT_DICT = Lf_skiplist.Fr_skiplist.Atomic_int
module _ : Support.INT_DICT = Lf_skiplist.Seq_skiplist.Int
module _ : Support.INT_DICT = Lf_skiplist.Locked_skiplist.Int
module _ : Support.INT_DICT = Lf_skiplist.Fraser_skiplist.Atomic_int

module _ : Support.INT_DICT = Lf_skiplist.St_skiplist.Atomic_int

module FraserS =
  Lf_skiplist.Fraser_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

module StS = Lf_skiplist.St_skiplist.Make (Lf_kernel.Ordered.Int) (Lf_dsim.Sim_mem)

let oracle_tests =
  [
    Support.oracle_test (module Lf_skiplist.Fr_skiplist.Atomic_int);
    Support.oracle_test (module Lf_skiplist.Seq_skiplist.Int);
    Support.oracle_test (module Lf_skiplist.Locked_skiplist.Int);
    Support.oracle_test (module Lf_skiplist.Fraser_skiplist.Atomic_int);
    Support.oracle_test (module Lf_skiplist.St_skiplist.Atomic_int);
  ]

(* --- Range and successor operations --- *)

let test_range_ops () =
  let t = SL.create () in
  Alcotest.(check (option (pair int int))) "empty min" None (SL.min_binding t);
  Alcotest.(check (option (pair int int))) "empty max" None (SL.max_binding t);
  Alcotest.(check (option (pair int int))) "empty ge" None (SL.find_ge t 3);
  List.iter (fun k -> ignore (SL.insert t k (k * 10))) [ 50; 10; 30; 20; 40 ];
  Alcotest.(check (option (pair int int))) "min" (Some (10, 100))
    (SL.min_binding t);
  Alcotest.(check (option (pair int int))) "max" (Some (50, 500))
    (SL.max_binding t);
  Alcotest.(check (option (pair int int))) "ge exact" (Some (30, 300))
    (SL.find_ge t 30);
  Alcotest.(check (option (pair int int))) "ge between" (Some (40, 400))
    (SL.find_ge t 31);
  Alcotest.(check (option (pair int int))) "ge above" None (SL.find_ge t 51);
  let range lo hi =
    List.rev (SL.fold_range t ~lo ~hi (fun acc k _ -> k :: acc) [])
  in
  Alcotest.(check (list int)) "range" [ 20; 30; 40 ] (range 15 45);
  Alcotest.(check (list int)) "inverted" [] (range 45 15);
  (* After deleting the max, max_binding moves left. *)
  ignore (SL.delete t 50);
  Alcotest.(check (option (pair int int))) "new max" (Some (40, 400))
    (SL.max_binding t)

let range_prop =
  Support.qcheck "skiplist range ops agree with a sorted-list oracle"
    QCheck2.Gen.(
      triple
        (list_size (int_bound 60) (int_bound 50))
        (int_bound 50) (int_bound 50))
    (fun (keys, lo, hi) ->
      let t = SL.create_with ~max_level:8 () in
      List.iter (fun k -> ignore (SL.insert t k k)) keys;
      let sorted = List.sort_uniq compare keys in
      let expect_ge = List.find_opt (fun k -> k >= lo) sorted in
      let got_ge = Option.map fst (SL.find_ge t lo) in
      let expect_range = List.filter (fun k -> k >= lo && k <= hi) sorted in
      let got_range =
        List.rev (SL.fold_range t ~lo ~hi (fun acc k _ -> k :: acc) [])
      in
      let expect_max =
        match List.rev sorted with [] -> None | k :: _ -> Some k
      in
      got_ge = expect_ge && got_range = expect_range
      && Option.map fst (SL.max_binding t) = expect_max)

(* --- Tower structure --- *)

let test_insert_with_height_builds_tower () =
  let t = SL.create_with ~max_level:8 () in
  Alcotest.(check bool) "insert" true (SL.insert_with_height t ~height:5 42 0);
  let counts = SL.level_counts t in
  Alcotest.(check (array int))
    "one node on each of levels 1-5"
    [| 1; 1; 1; 1; 1; 0; 0; 0 |]
    counts;
  let h = SL.height_histogram t in
  Alcotest.(check int) "one tower of height 5" 1 h.(5);
  SL.check_invariants t

let test_delete_removes_whole_tower () =
  let t = SL.create_with ~max_level:8 () in
  ignore (SL.insert_with_height t ~height:6 1 0);
  ignore (SL.insert_with_height t ~height:3 2 0);
  Alcotest.(check bool) "delete" true (SL.delete t 1);
  Alcotest.(check (array int))
    "only key 2's tower remains"
    [| 1; 1; 1; 0; 0; 0; 0; 0 |]
    (SL.level_counts t);
  Alcotest.(check bool) "delete 2" true (SL.delete t 2);
  Alcotest.(check (array int))
    "empty" [| 0; 0; 0; 0; 0; 0; 0; 0 |] (SL.level_counts t);
  SL.check_invariants t

let test_height_clamped () =
  let t = SL.create_with ~max_level:4 () in
  Alcotest.(check bool) "oversized height accepted" true
    (SL.insert_with_height t ~height:99 7 0);
  Alcotest.(check int) "clamped to max" 1 (SL.height_histogram t).(4);
  SL.check_invariants t

(* --- Height distribution (EXP-7's property, small scale) --- *)

let test_height_distribution_geometric () =
  let t = SL.create_with ~max_level:20 () in
  for i = 1 to 20_000 do
    ignore (SL.insert t i i)
  done;
  let p, tv = Lf_kernel.Stats.geometric_fit (SL.height_histogram t) in
  Alcotest.(check bool)
    (Printf.sprintf "p=%.3f near 1/2" p)
    true
    (abs_float (p -. 0.5) < 0.03);
  Alcotest.(check bool) (Printf.sprintf "tv=%.3f small" tv) true (tv < 0.05)

let test_pugh_height_distribution () =
  let t = Pugh.create_with ~max_level:20 ~seed:77 () in
  for i = 1 to 20_000 do
    ignore (Pugh.insert t i i)
  done;
  let p, tv = Lf_kernel.Stats.geometric_fit (Pugh.height_histogram t) in
  Alcotest.(check bool) "p near 1/2" true (abs_float (p -. 0.5) < 0.03);
  Alcotest.(check bool) "tv small" true (tv < 0.05)

(* --- Interrupted insertion (Section 4): a deletion arriving while the
   tower is being built must stop the build and leave no residue. --- *)

let test_interrupted_insertion () =
  let t = SLS.create_with ~max_level:8 () in
  let inserter _ = ignore (SLS.insert_with_height t ~height:6 50 1) in
  let deleter _ = ignore (SLS.delete t 50) in
  let parked = ref false in
  let policy st =
    if not !parked then begin
      let c = Sim.counters st 0 in
      (* Park the inserter once the root and the level-2 node are in. *)
      if
        c.Lf_kernel.Counters.cas_successes.(Lf_kernel.Counters.kind_index
                                              Ev.Insertion) >= 2
      then begin
        parked := true;
        Some 1
      end
      else if Sim.is_finished st 0 then None
      else Some 0
    end
    else if not (Sim.is_finished st 1) then Some 1
    else if not (Sim.is_finished st 0) then Some 0
    else None
  in
  ignore (Sim.run ~policy:(Sim.Custom policy) [| inserter; deleter |]);
  Sim.quiet (fun () ->
      Alcotest.(check bool) "key gone" false (SLS.mem t 50);
      Alcotest.(check (array int))
        "no residue on any level"
        (Array.make 8 0)
        (SLS.level_counts t);
      SLS.check_invariants t)

(* --- Superfluous-node cleanup: searches remove towers whose root is
   marked. --- *)

let test_search_cleans_superfluous () =
  let t = SLS.create_with ~max_level:8 () in
  ignore
    (Sim.run
       [|
         (fun _ ->
           ignore (SLS.insert_with_height t ~height:6 10 0);
           ignore (SLS.insert_with_height t ~height:6 20 0);
           ignore (SLS.insert_with_height t ~height:6 30 0));
       |]);
  (* Delete 20 but stop the deleter right after the root is marked: the
     upper tower nodes remain, forming a superfluous tower. *)
  let deleter _ = ignore (SLS.delete t 20) in
  let policy st =
    let c = Sim.counters st 0 in
    if
      c.Lf_kernel.Counters.cas_successes.(Lf_kernel.Counters.kind_index
                                            Ev.Marking) >= 1
    then None (* abandon the deleter *)
    else if Sim.is_finished st 0 then None
    else Some 0
  in
  ignore (Sim.run ~policy:(Sim.Custom policy) [| deleter |]);
  let counts = Sim.quiet (fun () -> SLS.level_counts t) in
  Alcotest.(check bool) "superfluous residue exists" true (counts.(5) >= 2);
  (* A search whose per-level path crosses the superfluous tower (any key in
     (20, 30)) removes the leftover nodes at every level.  A search for 30
     itself would descend through tower 30 and only clean the top level -
     searches delete only the superfluous nodes they encounter. *)
  ignore (Sim.run [| (fun _ -> ignore (SLS.mem t 25)) |]);
  Sim.quiet (fun () ->
      Alcotest.(check (array int))
        "towers of 10 and 30 remain"
        [| 2; 2; 2; 2; 2; 2; 0; 0 |]
        (SLS.level_counts t);
      SLS.check_invariants t)

(* --- Simulator stress: invariants + conservation + linearizability --- *)

let test_sim_conservation () =
  List.iter
    (fun seed ->
      let t = SLS.create_with ~max_level:8 () in
      let net = ref 0 in
      let body pid =
        let rng = Lf_kernel.Splitmix.create (seed + (977 * pid)) in
        for _ = 1 to 100 do
          let k = Lf_kernel.Splitmix.int rng 20 in
          match Lf_kernel.Splitmix.int rng 3 with
          | 0 ->
              if
                SLS.insert_with_height t
                  ~height:(1 + Lf_kernel.Splitmix.int rng 5)
                  k k
              then incr net
          | 1 -> if SLS.delete t k then decr net
          | _ -> ignore (SLS.mem t k)
        done
      in
      ignore (Sim.run ~policy:(Sim.Random seed) (Array.make 3 body));
      Sim.quiet (fun () ->
          SLS.check_invariants t;
          Alcotest.(check int)
            (Printf.sprintf "conservation seed %d" seed)
            !net (SLS.length t)))
    [ 1; 2; 3; 4; 5; 6 ]

let test_sim_linearizable () =
  List.iter
    (fun seed ->
      let t = SLS.create_with ~max_level:6 () in
      let ops =
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> SLS.insert t k k);
            delete = (fun k -> SLS.delete t k);
            find = (fun k -> SLS.mem t k);
          }
      in
      let h =
        Lf_workload.Sim_driver.run_recorded ~policy:(Sim.Random seed) ~procs:3
          ~ops_per_proc:15 ~key_range:6
          ~mix:{ insert_pct = 40; delete_pct = 40 }
          ~seed ops
      in
      Support.assert_linearizable h)
    [ 61; 62; 63; 64 ]

(* --- Fraser-style baseline --- *)

let test_fraser_sim_conservation () =
  List.iter
    (fun seed ->
      let t = FraserS.create_with ~max_level:6 () in
      let net = ref 0 in
      let body pid =
        let rng = Lf_kernel.Splitmix.create (seed + (977 * pid)) in
        for _ = 1 to 100 do
          let k = Lf_kernel.Splitmix.int rng 20 in
          match Lf_kernel.Splitmix.int rng 3 with
          | 0 ->
              if
                FraserS.insert_with_height t
                  ~height:(1 + Lf_kernel.Splitmix.int rng 4)
                  k k
              then incr net
          | 1 -> if FraserS.delete t k then decr net
          | _ -> ignore (FraserS.mem t k)
        done
      in
      ignore (Sim.run ~policy:(Sim.Random seed) (Array.make 3 body));
      Sim.quiet (fun () ->
          FraserS.check_invariants t;
          Alcotest.(check int)
            (Printf.sprintf "fraser conservation seed %d" seed)
            !net (FraserS.length t)))
    [ 1; 2; 3; 4; 5; 6 ]

let test_fraser_sim_linearizable () =
  List.iter
    (fun seed ->
      let t = FraserS.create_with ~max_level:5 () in
      let ops =
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> FraserS.insert t k k);
            delete = (fun k -> FraserS.delete t k);
            find = (fun k -> FraserS.mem t k);
          }
      in
      let h =
        Lf_workload.Sim_driver.run_recorded ~policy:(Sim.Random seed) ~procs:3
          ~ops_per_proc:15 ~key_range:6
          ~mix:{ insert_pct = 40; delete_pct = 40 }
          ~seed ops
      in
      Support.assert_linearizable h)
    [ 91; 92; 93; 94; 95; 96 ]

let test_fraser_exhaustive_schedules () =
  let mk () =
    let t = FraserS.create_with ~max_level:3 () in
    Sim.quiet (fun () ->
        ignore (FraserS.insert_with_height t ~height:2 1 1);
        ignore (FraserS.insert_with_height t ~height:1 3 3));
    let clock = ref 0 in
    let entries = ref [] in
    let record pid op f =
      let inv = !clock in
      incr clock;
      let ok = f () in
      let ret = !clock in
      incr clock;
      entries := { Lf_lin.History.pid; op; ok; inv; ret } :: !entries
    in
    let scripts =
      [|
        (fun pid ->
          record pid (Lf_lin.History.Insert 2) (fun () ->
              FraserS.insert_with_height t ~height:2 2 2);
          record pid (Lf_lin.History.Delete 2) (fun () -> FraserS.delete t 2));
        (fun pid ->
          record pid (Lf_lin.History.Delete 1) (fun () -> FraserS.delete t 1);
          record pid (Lf_lin.History.Insert 2) (fun () ->
              FraserS.insert_with_height t ~height:3 2 2));
      |]
    in
    let check () =
      match Sim.quiet (fun () -> FraserS.check_invariants t) with
      | exception Failure m -> Error m
      | () -> (
          let h =
            List.sort
              (fun a b -> compare a.Lf_lin.History.inv b.Lf_lin.History.inv)
              !entries
          in
          let init = Lf_lin.Checker.IntSet.of_list [ 1; 3 ] in
          match Lf_lin.Checker.check ~init h with
          | Lf_lin.Checker.Linearizable -> Ok ()
          | Lf_lin.Checker.Not_linearizable -> Error "not linearizable")
    in
    (scripts, check)
  in
  let res = Lf_dsim.Explore.run ~max_preemptions:2 ~max_schedules:40_000 mk in
  match res.failures with
  | [] -> ()
  | (prefix, msg) :: _ ->
      Alcotest.failf "fraser: %s under [%s]" msg
        (String.concat ";" (List.map string_of_int prefix))

(* --- Sundell-Tsigas-style baseline --- *)

let test_st_sim_conservation () =
  List.iter
    (fun seed ->
      let t = StS.create_with ~max_level:6 () in
      let net = ref 0 in
      let body pid =
        let rng = Lf_kernel.Splitmix.create (seed + (977 * pid)) in
        for _ = 1 to 100 do
          let k = Lf_kernel.Splitmix.int rng 20 in
          match Lf_kernel.Splitmix.int rng 3 with
          | 0 ->
              if
                StS.insert_with_height t
                  ~height:(1 + Lf_kernel.Splitmix.int rng 4)
                  k k
              then incr net
          | 1 -> if StS.delete t k then decr net
          | _ -> ignore (StS.mem t k)
        done
      in
      ignore (Sim.run ~policy:(Sim.Random seed) (Array.make 3 body));
      Sim.quiet (fun () ->
          StS.check_invariants t;
          Alcotest.(check int)
            (Printf.sprintf "st conservation seed %d" seed)
            !net (StS.length t)))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_st_sim_linearizable () =
  List.iter
    (fun seed ->
      let t = StS.create_with ~max_level:5 () in
      let ops =
        Lf_workload.Sim_driver.
          {
            insert = (fun k -> StS.insert t k k);
            delete = (fun k -> StS.delete t k);
            find = (fun k -> StS.mem t k);
          }
      in
      let h =
        Lf_workload.Sim_driver.run_recorded ~policy:(Sim.Random seed) ~procs:3
          ~ops_per_proc:15 ~key_range:6
          ~mix:{ insert_pct = 40; delete_pct = 40 }
          ~seed ops
      in
      Support.assert_linearizable h)
    [ 71; 72; 73; 74; 75; 76 ]

let test_st_exhaustive_schedules () =
  let mk () =
    let t = StS.create_with ~max_level:3 () in
    Sim.quiet (fun () ->
        ignore (StS.insert_with_height t ~height:2 1 1);
        ignore (StS.insert_with_height t ~height:1 3 3));
    let clock = ref 0 in
    let entries = ref [] in
    let record pid op f =
      let inv = !clock in
      incr clock;
      let ok = f () in
      let ret = !clock in
      incr clock;
      entries := { Lf_lin.History.pid; op; ok; inv; ret } :: !entries
    in
    let scripts =
      [|
        (fun pid ->
          record pid (Lf_lin.History.Insert 2) (fun () ->
              StS.insert_with_height t ~height:2 2 2);
          record pid (Lf_lin.History.Delete 2) (fun () -> StS.delete t 2));
        (fun pid ->
          record pid (Lf_lin.History.Delete 1) (fun () -> StS.delete t 1);
          record pid (Lf_lin.History.Insert 2) (fun () ->
              StS.insert_with_height t ~height:3 2 2));
      |]
    in
    let check () =
      match Sim.quiet (fun () -> StS.check_invariants t) with
      | exception Failure m -> Error m
      | () -> (
          let h =
            List.sort
              (fun a b -> compare a.Lf_lin.History.inv b.Lf_lin.History.inv)
              !entries
          in
          let init = Lf_lin.Checker.IntSet.of_list [ 1; 3 ] in
          match Lf_lin.Checker.check ~init h with
          | Lf_lin.Checker.Linearizable -> Ok ()
          | Lf_lin.Checker.Not_linearizable -> Error "not linearizable")
    in
    (scripts, check)
  in
  let res = Lf_dsim.Explore.run ~max_preemptions:2 ~max_schedules:40_000 mk in
  match res.failures with
  | [] -> ()
  | (prefix, msg) :: _ ->
      Alcotest.failf "st: %s under [%s]" msg
        (String.concat ";" (List.map string_of_int prefix))

(* The ST backlink actually fires: park a traverser on a node, delete that
   node with a tall predecessor, resume - recovery must use the backlink
   (Backlink_step counted), not restart. *)
let test_st_backlink_recovery_fires () =
  let t = StS.create_with ~max_level:4 () in
  Sim.quiet (fun () ->
      ignore (StS.insert_with_height t ~height:4 10 0);
      (* tall pred *)
      ignore (StS.insert_with_height t ~height:4 20 0);
      (* victim *)
      ignore (StS.insert_with_height t ~height:1 30 0));
  let searcher _ = ignore (StS.mem t 30) in
  let deleter _ = ignore (StS.delete t 20) in
  (* Park the searcher once its walk reaches node 20 (2 curr-updates at the
     top level... simpler: after a fixed number of steps mid-walk), run the
     deleter fully, then resume. *)
  let parked = ref false in
  let policy st =
    let searcher_steps =
      let c = Sim.counters st 0 in
      c.Lf_kernel.Counters.reads + Lf_kernel.Counters.total_cas_attempts c
    in
    if (not !parked) && searcher_steps < 3 && not (Sim.is_finished st 0) then
      Some 0
    else begin
      parked := true;
      if not (Sim.is_finished st 1) then Some 1
      else if not (Sim.is_finished st 0) then Some 0
      else None
    end
  in
  let res = Sim.run ~policy:(Sim.Custom policy) [| searcher; deleter |] in
  ignore res;
  Sim.quiet (fun () ->
      Alcotest.(check bool) "30 still found" true (StS.mem t 30);
      StS.check_invariants t)

(* --- delete_min --- *)

let test_delete_min_sequential () =
  let t = SL.create () in
  List.iter (fun k -> ignore (SL.insert t k (k * 2))) [ 5; 1; 9; 3; 7 ];
  let order = ref [] in
  let rec drain () =
    match SL.delete_min t with
    | None -> ()
    | Some (k, v) ->
        Alcotest.(check int) "value" (k * 2) v;
        order := k :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "ascending order" [ 1; 3; 5; 7; 9 ]
    (List.rev !order);
  Alcotest.(check bool) "empty" true (SL.delete_min t = None);
  SL.check_invariants t

let test_delete_min_unique_claims_sim () =
  let t = SLS.create_with ~max_level:6 () in
  ignore
    (Sim.run
       [| (fun _ -> for i = 1 to 30 do ignore (SLS.insert_with_height t ~height:((i mod 4) + 1) i i) done) |]);
  let claimed = Array.make 2 [] in
  let body pid =
    let rec go () =
      match SLS.delete_min t with
      | None -> ()
      | Some (k, _) ->
          claimed.(pid) <- k :: claimed.(pid);
          go ()
    in
    go ()
  in
  List.iter
    (fun seed ->
      claimed.(0) <- [];
      claimed.(1) <- [];
      let t' = SLS.create_with ~max_level:6 () in
      ignore
        (Sim.run
           [| (fun _ -> for i = 1 to 30 do ignore (SLS.insert_with_height t' ~height:((i mod 4) + 1) i i) done) |]);
      let body' pid =
        let rec go () =
          match SLS.delete_min t' with
          | None -> ()
          | Some (k, _) ->
              claimed.(pid) <- k :: claimed.(pid);
              go ()
        in
        go ()
      in
      ignore (Sim.run ~policy:(Sim.Random seed) [| body'; body' |]);
      let all = List.sort compare (claimed.(0) @ claimed.(1)) in
      Alcotest.(check (list int))
        (Printf.sprintf "each key claimed exactly once (seed %d)" seed)
        (List.init 30 (fun i -> i + 1))
        all)
    [ 71; 72; 73 ];
  ignore body;
  ignore t

(* --- Ablation: no superfluous helping (distinct keys only) --- *)

let test_ablation_no_helping_correct () =
  let t = SLS.create_with ~max_level:6 ~help_superfluous:false () in
  let next_key = ref 0 in
  let net = ref 0 in
  let live = ref [] in
  let body pid =
    let rng = Lf_kernel.Splitmix.create (500 + pid) in
    for _ = 1 to 80 do
      if Lf_kernel.Splitmix.bool rng || !live = [] then begin
        let k = !next_key in
        incr next_key;
        if SLS.insert_with_height t ~height:(1 + Lf_kernel.Splitmix.int rng 4) k k
        then begin
          incr net;
          live := k :: !live
        end
      end
      else
        match !live with
        | k :: rest ->
            live := rest;
            if SLS.delete t k then decr net
        | [] -> ()
    done
  in
  ignore (Sim.run ~policy:(Sim.Random 9) [| body; body |]);
  Sim.quiet (fun () ->
      Alcotest.(check int) "conservation" !net (SLS.length t))

(* --- Multi-domain stress --- *)

let test_domain_stress () =
  let module D = Lf_skiplist.Fr_skiplist.Atomic_int in
  let t = D.create () in
  let net = Atomic.make 0 in
  let work did =
    let rng = Lf_kernel.Splitmix.create (did * 77) in
    let local = ref 0 in
    for _ = 1 to 10_000 do
      let k = Lf_kernel.Splitmix.int rng 64 in
      match Lf_kernel.Splitmix.int rng 3 with
      | 0 -> if D.insert t k k then incr local
      | 1 -> if D.delete t k then decr local
      | _ -> ignore (D.find t k)
    done;
    ignore (Atomic.fetch_and_add net !local)
  in
  let ds = List.init 3 (fun i -> Domain.spawn (fun () -> work (i + 1))) in
  work 0;
  List.iter Domain.join ds;
  D.check_invariants t;
  Alcotest.(check int) "conservation" (Atomic.get net) (D.length t)

let () =
  Alcotest.run "skiplist"
    [
      ("oracle", oracle_tests);
      ( "range ops",
        [ Alcotest.test_case "basics" `Quick test_range_ops; range_prop ] );
      ( "towers",
        [
          Alcotest.test_case "explicit height" `Quick
            test_insert_with_height_builds_tower;
          Alcotest.test_case "delete removes tower" `Quick
            test_delete_removes_whole_tower;
          Alcotest.test_case "height clamped" `Quick test_height_clamped;
        ] );
      ( "height distribution",
        [
          Alcotest.test_case "fr geometric" `Quick
            test_height_distribution_geometric;
          Alcotest.test_case "pugh geometric" `Quick
            test_pugh_height_distribution;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "interrupted insertion" `Quick
            test_interrupted_insertion;
          Alcotest.test_case "search cleans superfluous" `Quick
            test_search_cleans_superfluous;
        ] );
      ( "simulator",
        [
          Alcotest.test_case "conservation" `Quick test_sim_conservation;
          Alcotest.test_case "linearizable" `Quick test_sim_linearizable;
          Alcotest.test_case "ablation correct" `Quick
            test_ablation_no_helping_correct;
        ] );
      ( "fraser baseline",
        [
          Alcotest.test_case "sim conservation" `Quick
            test_fraser_sim_conservation;
          Alcotest.test_case "sim linearizable" `Quick
            test_fraser_sim_linearizable;
          Alcotest.test_case "exhaustive schedules" `Slow
            test_fraser_exhaustive_schedules;
        ] );
      ( "st baseline",
        [
          Alcotest.test_case "sim conservation" `Quick test_st_sim_conservation;
          Alcotest.test_case "sim linearizable" `Quick test_st_sim_linearizable;
          Alcotest.test_case "exhaustive schedules" `Slow
            test_st_exhaustive_schedules;
          Alcotest.test_case "backlink recovery" `Quick
            test_st_backlink_recovery_fires;
        ] );
      ( "delete_min",
        [
          Alcotest.test_case "sequential order" `Quick
            test_delete_min_sequential;
          Alcotest.test_case "unique claims" `Quick
            test_delete_min_unique_claims_sim;
        ] );
      ("stress", [ Alcotest.test_case "domains" `Slow test_domain_stress ]);
    ]
