test/test_sim.ml: Alcotest Array Lf_dsim Lf_kernel List Printf String
