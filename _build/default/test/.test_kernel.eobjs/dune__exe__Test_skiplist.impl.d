test/test_skiplist.ml: Alcotest Array Atomic Domain Lf_dsim Lf_kernel Lf_lin Lf_skiplist Lf_workload List Option Printf QCheck2 String Support
