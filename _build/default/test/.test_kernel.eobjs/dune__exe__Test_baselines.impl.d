test/test_baselines.ml: Alcotest Array Atomic Domain Lf_baselines Lf_dsim Lf_kernel Lf_workload List Printf Support
