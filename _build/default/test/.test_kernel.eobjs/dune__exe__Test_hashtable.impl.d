test/test_hashtable.ml: Alcotest Atomic Domain Lf_dsim Lf_hashtable Lf_kernel Lf_workload List Support
