test/support.ml: Alcotest Hashtbl Lf_kernel Lf_lin List Printf QCheck2 QCheck_alcotest
