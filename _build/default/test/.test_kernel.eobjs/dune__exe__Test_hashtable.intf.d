test/test_hashtable.mli:
