test/test_experiments.ml: Alcotest Lf_dsim Lf_kernel Lf_scenarios Lf_skiplist List
