test/test_workload.ml: Alcotest Lf_dsim Lf_kernel Lf_lin Lf_list Lf_workload List Support
