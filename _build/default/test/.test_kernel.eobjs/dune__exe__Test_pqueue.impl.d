test/test_pqueue.ml: Alcotest Array Atomic Domain Lf_baselines Lf_dsim Lf_kernel Lf_pqueue Lf_skiplist List Printf String
