test/test_fr_list.ml: Alcotest Array Atomic Domain Lf_dsim Lf_kernel Lf_list Lf_workload List Option QCheck2 Support
