test/test_lin.ml: Alcotest Checker Fmt Hashtbl History Lf_lin List Support
