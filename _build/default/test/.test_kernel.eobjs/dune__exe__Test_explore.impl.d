test/test_explore.ml: Alcotest Array Lf_baselines Lf_dsim Lf_kernel Lf_lin Lf_list Lf_skiplist List Printf QCheck2 Result String Support
