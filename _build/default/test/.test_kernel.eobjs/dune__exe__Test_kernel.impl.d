test/test_kernel.ml: Alcotest Array Domain Lf_kernel Lf_list Lf_workload QCheck2 Support
