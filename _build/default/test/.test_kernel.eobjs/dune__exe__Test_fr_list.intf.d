test/test_fr_list.mli:
