test/test_crash.ml: Alcotest Array Lf_baselines Lf_dsim Lf_kernel Lf_list Lf_skiplist List
