(* Shared helpers for the test suite. *)

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A scripted sequence of dictionary operations, the common random input of
   the oracle tests: (op tag, key) pairs over a small key space. *)
let ops_gen ~key_range ~len =
  QCheck2.Gen.(
    list_size (int_bound len)
      (pair (int_bound 2) (int_bound (key_range - 1))))

(* Run a (op, key) script against both an implementation (via closures) and
   a Hashtbl oracle; fail on the first divergence.  Returns the final oracle
   contents, sorted. *)
let run_against_oracle script ~insert ~delete ~find =
  let oracle = Hashtbl.create 64 in
  List.iteri
    (fun i (tag, k) ->
      match tag with
      | 0 ->
          let expected = not (Hashtbl.mem oracle k) in
          let got = insert k k in
          if got <> expected then
            Alcotest.failf "op %d: insert %d returned %b (oracle %b)" i k got
              expected;
          if got then Hashtbl.replace oracle k k
      | 1 ->
          let expected = Hashtbl.mem oracle k in
          let got = delete k in
          if got <> expected then
            Alcotest.failf "op %d: delete %d returned %b (oracle %b)" i k got
              expected;
          Hashtbl.remove oracle k
      | _ ->
          let expected = Hashtbl.find_opt oracle k in
          let got = find k in
          if got <> expected then
            Alcotest.failf "op %d: find %d disagreed with oracle" i k)
    script;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle [])

(* All (op,key) scripts as a qcheck generator-based oracle test for a DICT
   implementation. *)
module type INT_DICT = Lf_kernel.Dict_intf.S with type key = int

let oracle_test ?count (module D : INT_DICT) =
  qcheck ?count
    (Printf.sprintf "%s agrees with oracle" D.name)
    (ops_gen ~key_range:16 ~len:120)
    (fun script ->
      let t = D.create () in
      let expected =
        run_against_oracle script
          ~insert:(fun k v -> D.insert t k v)
          ~delete:(fun k -> D.delete t k)
          ~find:(fun k -> D.find t k)
      in
      D.check_invariants t;
      D.to_list t = expected && D.length t = List.length expected)

(* Assert a history is linearizable, pretty-printing it on failure. *)
let assert_linearizable h =
  match Lf_lin.Checker.check h with
  | Lf_lin.Checker.Linearizable -> ()
  | Lf_lin.Checker.Not_linearizable ->
      Alcotest.failf "history not linearizable:@\n%a" Lf_lin.History.pp h
