(** Key generators: the distributions workload sweeps draw from. *)

type t

val uniform : int -> t
(** Uniform over [\[0, range)]. *)

val hotspot : range:int -> hot:int -> hot_pct:int -> t
(** [hot_pct]% of draws land uniformly in [\[0, hot)], the rest in
    [\[0, range)]. *)

val zipf : range:int -> theta:float -> t
(** Zipf-like skew via the standard CDF-inversion approximation; [theta] in
    (0, 1), higher = more skewed.  The normalization table is precomputed on
    first use per (range, theta). *)

val ascending : unit -> t
(** 0, 1, 2, ... (end-of-list contention workloads). *)

val draw : t -> Lf_kernel.Splitmix.t -> int
