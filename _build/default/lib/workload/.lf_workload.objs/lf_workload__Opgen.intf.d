lib/workload/opgen.mli: Format Keygen Lf_kernel
