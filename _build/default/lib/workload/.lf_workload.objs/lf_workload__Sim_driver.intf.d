lib/workload/sim_driver.mli: Lf_dsim Lf_lin Opgen
