lib/workload/runner.mli: Lf_kernel Lf_lin Opgen
