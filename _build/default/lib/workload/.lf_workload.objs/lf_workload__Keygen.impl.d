lib/workload/keygen.ml: Float Hashtbl Lf_kernel
