lib/workload/runner.ml: Atomic Domain Keygen Lf_kernel Lf_lin List Opgen Option Unix
