lib/workload/keygen.mli: Lf_kernel
