lib/workload/opgen.ml: Format Keygen Lf_kernel
