lib/workload/sim_driver.ml: Array Keygen Lf_dsim Lf_kernel Lf_lin List Opgen
