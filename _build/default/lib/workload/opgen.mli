(** Operation mixes: insert / delete percentages, the rest searches. *)

type op = Insert of int | Delete of int | Find of int

type mix = { insert_pct : int; delete_pct : int }

val write_heavy : mix
(** 50% insert / 50% delete. *)

val mixed : mix
(** 20% insert / 20% delete / 60% search. *)

val read_mostly : mix
(** 5% / 5% / 90%. *)

val pp_mix : Format.formatter -> mix -> unit

val draw : mix -> Keygen.t -> Lf_kernel.Splitmix.t -> op
