(* Operation mixes: percentage of inserts and deletes, the rest searches.
   The classic mixes from the lock-free list literature are provided as
   constants. *)

type op = Insert of int | Delete of int | Find of int

type mix = { insert_pct : int; delete_pct : int }

let write_heavy = { insert_pct = 50; delete_pct = 50 }
let mixed = { insert_pct = 20; delete_pct = 20 }
let read_mostly = { insert_pct = 5; delete_pct = 5 }

let pp_mix fmt m =
  Format.fprintf fmt "%di/%dd/%ds" m.insert_pct m.delete_pct
    (100 - m.insert_pct - m.delete_pct)

let draw mix keygen rng =
  let k = Keygen.draw keygen rng in
  let d = Lf_kernel.Splitmix.int rng 100 in
  if d < mix.insert_pct then Insert k
  else if d < mix.insert_pct + mix.delete_pct then Delete k
  else Find k
