(** Mutable tallies for the Section 3.4 cost model: C&S attempts and
    successes by kind, backlink traversals, search pointer updates, plus
    secondary metrics (reads, writes, retries, helping entries).

    One [t] per domain or simulated process; merge with {!add_into}. *)

type t = {
  mutable cas_attempts : int array;  (** indexed by {!kind_index} *)
  mutable cas_successes : int array;
  mutable backlink_steps : int;
  mutable next_updates : int;
  mutable curr_updates : int;
  mutable aux_steps : int;
  mutable retries : int;
  mutable helps : int;
  mutable reads : int;
  mutable writes : int;
}

val cas_kinds : Mem_event.cas_kind list
(** The five kinds, in index order. *)

val kind_index : Mem_event.cas_kind -> int
(** Position of a kind in the [cas_attempts]/[cas_successes] arrays. *)

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val record_cas_attempt : t -> Mem_event.cas_kind -> unit
val record_cas_success : t -> Mem_event.cas_kind -> unit
val record : t -> Mem_event.t -> unit

val total_cas_attempts : t -> int
val total_cas_successes : t -> int

val essential_steps : t -> int
(** The paper's essential-step count: C&S attempts + backlink traversals +
    next/curr pointer updates (+ auxiliary-node traversals, so the Valois
    baseline is charged for its searches too). *)

val add_into : into:t -> t -> unit
val pp : Format.formatter -> t -> unit
