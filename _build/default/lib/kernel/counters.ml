(* Mutable tallies for the Section 3.4 cost model.  One [t] per domain (or per
   simulated process); merge with [add_into] for totals. *)

type t = {
  mutable cas_attempts : int array; (* indexed by cas_kind tag *)
  mutable cas_successes : int array;
  mutable backlink_steps : int;
  mutable next_updates : int;
  mutable curr_updates : int;
  mutable aux_steps : int;
  mutable retries : int;
  mutable helps : int;
  mutable reads : int;
  mutable writes : int;
}

let cas_kinds =
  Mem_event.[ Insertion; Flagging; Marking; Physical_delete; Other_cas ]

let kind_index : Mem_event.cas_kind -> int = function
  | Insertion -> 0
  | Flagging -> 1
  | Marking -> 2
  | Physical_delete -> 3
  | Other_cas -> 4

let create () =
  {
    cas_attempts = Array.make 5 0;
    cas_successes = Array.make 5 0;
    backlink_steps = 0;
    next_updates = 0;
    curr_updates = 0;
    aux_steps = 0;
    retries = 0;
    helps = 0;
    reads = 0;
    writes = 0;
  }

let reset t =
  Array.fill t.cas_attempts 0 5 0;
  Array.fill t.cas_successes 0 5 0;
  t.backlink_steps <- 0;
  t.next_updates <- 0;
  t.curr_updates <- 0;
  t.aux_steps <- 0;
  t.retries <- 0;
  t.helps <- 0;
  t.reads <- 0;
  t.writes <- 0

let record_cas_attempt t k =
  let i = kind_index k in
  t.cas_attempts.(i) <- t.cas_attempts.(i) + 1

let record_cas_success t k =
  let i = kind_index k in
  t.cas_successes.(i) <- t.cas_successes.(i) + 1

let record t (e : Mem_event.t) =
  match e with
  | Backlink_step -> t.backlink_steps <- t.backlink_steps + 1
  | Next_update -> t.next_updates <- t.next_updates + 1
  | Curr_update -> t.curr_updates <- t.curr_updates + 1
  | Aux_step -> t.aux_steps <- t.aux_steps + 1
  | Retry -> t.retries <- t.retries + 1
  | Help -> t.helps <- t.helps + 1
  | User _ -> ()

let total_cas_attempts t = Array.fold_left ( + ) 0 t.cas_attempts
let total_cas_successes t = Array.fold_left ( + ) 0 t.cas_successes

(* The "essential steps" of the paper's cost model: C&S attempts plus backlink
   traversals plus next/curr pointer updates.  [aux_steps] is included so the
   Valois baseline is charged for its auxiliary-node traversals, which play
   the role of pointer updates in its searches. *)
let essential_steps t =
  total_cas_attempts t + t.backlink_steps + t.next_updates + t.curr_updates
  + t.aux_steps

let add_into ~into:a b =
  for i = 0 to 4 do
    a.cas_attempts.(i) <- a.cas_attempts.(i) + b.cas_attempts.(i);
    a.cas_successes.(i) <- a.cas_successes.(i) + b.cas_successes.(i)
  done;
  a.backlink_steps <- a.backlink_steps + b.backlink_steps;
  a.next_updates <- a.next_updates + b.next_updates;
  a.curr_updates <- a.curr_updates + b.curr_updates;
  a.aux_steps <- a.aux_steps + b.aux_steps;
  a.retries <- a.retries + b.retries;
  a.helps <- a.helps + b.helps;
  a.reads <- a.reads + b.reads;
  a.writes <- a.writes + b.writes

let copy t =
  let c = create () in
  add_into ~into:c t;
  c

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cas attempts: %d (ok %d)  [ins %d/%d flag %d/%d mark %d/%d unlink \
     %d/%d other %d/%d]@,\
     backlinks: %d  next-updates: %d  curr-updates: %d  aux: %d@,\
     retries: %d  helps: %d  reads: %d  writes: %d@,\
     essential steps: %d@]"
    (total_cas_attempts t) (total_cas_successes t)
    t.cas_successes.(0) t.cas_attempts.(0) t.cas_successes.(1)
    t.cas_attempts.(1) t.cas_successes.(2) t.cas_attempts.(2)
    t.cas_successes.(3) t.cas_attempts.(3) t.cas_successes.(4)
    t.cas_attempts.(4) t.backlink_steps t.next_updates t.curr_updates
    t.aux_steps t.retries t.helps t.reads t.writes (essential_steps t)
