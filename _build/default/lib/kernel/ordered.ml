(* Key discipline for the dictionaries, plus the −∞ / +∞ sentinels the paper
   stores in the head and tail nodes. *)

module type S = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Int : S with type t = int = struct
  type t = int

  let compare = Int.compare
  let pp = Format.pp_print_int
end

module String : S with type t = string = struct
  type t = string

  let compare = String.compare
  let pp fmt s = Format.fprintf fmt "%S" s
end

type 'a bounded = Neg_inf | Mid of 'a | Pos_inf

module Bounded (K : S) = struct
  type t = K.t bounded

  let compare a b =
    match (a, b) with
    | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
    | Neg_inf, _ -> -1
    | _, Neg_inf -> 1
    | Pos_inf, _ -> 1
    | _, Pos_inf -> -1
    | Mid a, Mid b -> K.compare a b

  let lt a b = compare a b < 0
  let le a b = compare a b <= 0
  let equal a b = compare a b = 0

  let pp fmt = function
    | Neg_inf -> Format.pp_print_string fmt "-inf"
    | Pos_inf -> Format.pp_print_string fmt "+inf"
    | Mid k -> K.pp fmt k
end
