(** Real atomics with per-domain cost-model counters.

    Each domain that touches a structure built over this memory gets its own
    {!Counters.t} through domain-local storage, so counting adds no
    synchronization to the hot path.  Counters are registered globally;
    collect them with {!grand_total} after joining the worker domains. *)

include Mem.S with type 'a aref = 'a Atomic.t

val local : unit -> Counters.t
(** The calling domain's counters. *)

val grand_total : unit -> Counters.t
(** Sum over every domain that ever touched a structure.  Only meaningful at
    quiescence. *)

val reset_all : unit -> unit
(** Reset every registered domain's counters. *)
