lib/kernel/dict_intf.mli: Mem Ordered
