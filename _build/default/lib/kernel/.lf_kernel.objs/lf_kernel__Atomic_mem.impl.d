lib/kernel/atomic_mem.ml: Atomic Domain Mem_event
