lib/kernel/counters.ml: Array Format Mem_event
