lib/kernel/counting_mem.mli: Atomic Counters Mem
