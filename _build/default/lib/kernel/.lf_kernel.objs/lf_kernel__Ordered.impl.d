lib/kernel/ordered.ml: Format Int String
