lib/kernel/mem_event.mli: Format
