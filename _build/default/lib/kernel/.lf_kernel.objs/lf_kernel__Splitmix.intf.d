lib/kernel/splitmix.mli:
