lib/kernel/atomic_mem.mli: Atomic Mem
