lib/kernel/ordered.mli: Format
