lib/kernel/counting_mem.ml: Atomic Counters Domain List
