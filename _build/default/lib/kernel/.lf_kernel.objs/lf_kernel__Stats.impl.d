lib/kernel/stats.ml: Array Format
