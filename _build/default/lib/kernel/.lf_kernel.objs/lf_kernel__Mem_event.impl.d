lib/kernel/mem_event.ml: Format
