lib/kernel/mem.ml: Mem_event
