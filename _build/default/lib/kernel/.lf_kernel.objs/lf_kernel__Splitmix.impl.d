lib/kernel/splitmix.ml: Int64
