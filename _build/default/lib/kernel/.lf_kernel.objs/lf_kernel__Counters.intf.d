lib/kernel/counters.mli: Format Mem_event
