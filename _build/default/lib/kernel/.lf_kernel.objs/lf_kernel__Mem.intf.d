lib/kernel/mem.mli: Mem_event
