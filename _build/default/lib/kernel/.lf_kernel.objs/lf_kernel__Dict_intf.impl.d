lib/kernel/dict_intf.ml: Mem Ordered
