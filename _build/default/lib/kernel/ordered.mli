(** Key discipline for the dictionaries, plus the -inf / +inf sentinels the
    paper stores in the head and tail nodes. *)

module type S = sig
  type t

  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Int : S with type t = int
module String : S with type t = string

(** A key extended with the sentinels: [Neg_inf < Mid k < Pos_inf]. *)
type 'a bounded = Neg_inf | Mid of 'a | Pos_inf

(** Total order on bounded keys. *)
module Bounded (K : S) : sig
  type t = K.t bounded

  val compare : t -> t -> int
  val lt : t -> t -> bool
  val le : t -> t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
