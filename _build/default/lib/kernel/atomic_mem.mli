(** Production memory: plain [Atomic.t] cells; cost-model events are erased
    so the hot path pays nothing for the instrumentation hooks. *)

include Mem.S with type 'a aref = 'a Atomic.t
