(** Pugh's sequential skip list (CACM 1990): the oracle the concurrent skip
    list is tested against, and the sequential baseline of EXP-6.  Classic
    array-of-forward-pointers representation with a visited-node counter
    exposed for cost measurements. *)

module Make (K : Lf_kernel.Ordered.S) : sig
  type key = K.t
  type 'a t

  val name : string
  val create : unit -> 'a t
  val create_with : ?max_level:int -> ?seed:int -> unit -> 'a t

  val find : 'a t -> key -> 'a option
  val mem : 'a t -> key -> bool
  val insert : 'a t -> key -> 'a -> bool
  val delete : 'a t -> key -> bool
  val to_list : 'a t -> (key * 'a) list
  val length : 'a t -> int

  val reset_steps : 'a t -> unit

  val steps : 'a t -> int
  (** Horizontal node visits since the last {!reset_steps} (EXP-6). *)

  val height_histogram : 'a t -> int array
  (** [.(h)] = number of towers of height [h] (EXP-7). *)

  val check_invariants : 'a t -> unit
end

module Int : module type of Make (Lf_kernel.Ordered.Int)
