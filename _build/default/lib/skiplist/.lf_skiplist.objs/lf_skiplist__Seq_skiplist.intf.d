lib/skiplist/seq_skiplist.mli: Lf_kernel
