lib/skiplist/st_skiplist.mli: Lf_kernel
