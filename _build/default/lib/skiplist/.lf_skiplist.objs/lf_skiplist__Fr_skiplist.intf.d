lib/skiplist/fr_skiplist.mli: Lf_kernel
