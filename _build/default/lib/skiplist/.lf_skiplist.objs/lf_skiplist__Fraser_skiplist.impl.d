lib/skiplist/fraser_skiplist.ml: Array Domain Format Lf_kernel List Option
