lib/skiplist/fraser_skiplist.mli: Lf_kernel
