lib/skiplist/seq_skiplist.ml: Array Lf_kernel List Option
