lib/skiplist/locked_skiplist.ml: Fun Lf_kernel Mutex Seq_skiplist
