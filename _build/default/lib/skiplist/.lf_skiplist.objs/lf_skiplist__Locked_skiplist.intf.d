lib/skiplist/locked_skiplist.mli: Lf_kernel
