lib/skiplist/st_skiplist.ml: Array Domain Format Lf_kernel List Option
