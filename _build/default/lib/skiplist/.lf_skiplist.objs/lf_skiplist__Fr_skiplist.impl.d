lib/skiplist/fr_skiplist.ml: Array Domain Format Lf_kernel List Option
