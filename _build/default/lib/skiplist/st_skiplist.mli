(** Sundell-Tsigas-style lock-free skip list (SAC 2004, the paper's
    citation [15]): Pugh-architecture nodes with marked next-pointer arrays
    plus a best-effort per-node backlink set at deletion.

    Recovery discipline (the one the paper characterizes in Sections 2 and
    4): a traversal that finds its predecessor deleted follows the
    predecessor's backlink {e if} it is already set {e and} the tower it
    points to reaches the current level; otherwise it restarts from the
    top.  Sits between the Fomitchev-Ruppert skip list (always-local
    recovery) and the Fraser baseline (always restart); EXP-15 measures all
    three. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t

  val create_with : ?max_level:int -> unit -> 'a t
  val insert_with_height : 'a t -> height:int -> key -> 'a -> bool
  val fold : 'a t -> ('b -> key -> 'a -> 'b) -> 'b -> 'b
end

module Atomic_int :
  module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
