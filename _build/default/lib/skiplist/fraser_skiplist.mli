(** Fraser-style lock-free skip list (Fraser 2003, the paper's citation
    [2]; the Herlihy-Shavit textbook algorithm): one node per key with an
    array of marked next pointers, every level maintained Harris-style.

    No backlinks, no flags: any C&S failure (snip, insertion, upper-level
    link) restarts the search from the top of the structure.  This is the
    contrast class for the Fomitchev-Ruppert skip list's local recovery
    (EXP-13).  Note that marked nodes may survive at quiescence if no
    search happens to pass them again; snapshots skip them. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t

  val create_with : ?max_level:int -> unit -> 'a t
  val insert_with_height : 'a t -> height:int -> key -> 'a -> bool
  val fold : 'a t -> ('b -> key -> 'a -> 'b) -> 'b -> 'b
end

module Atomic_int :
  module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
