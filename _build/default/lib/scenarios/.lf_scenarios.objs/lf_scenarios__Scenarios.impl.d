lib/scenarios/scenarios.ml: Array Lf_baselines Lf_dsim Lf_kernel Lf_list Lf_skiplist Lf_workload List
