lib/scenarios/scenarios.mli: Lf_kernel
