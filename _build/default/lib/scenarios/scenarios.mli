(** The paper's adversarial executions and measurement scenarios, shared by
    the benchmark harness (bench/exp*.ml) and the shape-lock regression
    tests (test/test_experiments.ml), so the published tables and the test
    suite exercise the same code.

    All scenarios run in the deterministic simulator; DESIGN.md documents
    each schedule's construction and EXPERIMENTS.md the measured results. *)

(** {1 EXP-1: amortized bound on the FR list} *)

val exp1_run : q:int -> n0:int -> seed:int -> int * int * int
(** Random mixed workload of [q] processes over an [n0]-key list; returns
    (total essential steps, sum over ops of n(S)+c(S), #ops).  The paper's
    theorem bounds the first by a constant times the second. *)

(** {1 EXP-2: the Section 3.1 tail adversary (linked lists)} *)

type list_target = {
  lname : string;
  insert : int -> bool;
  delete : int -> bool;
}

val fr_list_target : unit -> list_target
val harris_list_target : unit -> list_target
val michael_list_target : unit -> list_target

val tail_adversary :
  n:int -> q:int -> rounds:int -> (unit -> list_target) -> float * float * int
(** Park [q-1] inserters at their pending insertion C&S at the tail of an
    [n]-key list; a deleter removes the last node once per round, releasing
    each inserter exactly once per round.  Returns (avg essential steps per
    op, inserter recovery steps per round per inserter, total ops). *)

(** {1 EXP-3: the Valois Omega(m) execution} *)

type omega_target = {
  oinsert : int -> bool;
  odelete : int -> bool;
  park_kind : Lf_kernel.Mem_event.cas_kind;
      (** the first C&S of this implementation's deletion, where the
          adversary parks a cursor across its predecessor's deletion *)
}

val valois_omega_target : unit -> omega_target
val fr_omega_target : unit -> omega_target

val omega_schedule : m:int -> (unit -> omega_target) -> float * int
(** Two alternating deleters with parked stale cursors plus a producer;
    the live list stays at 2-3 cells and contention at 3 while back_link
    chains grow.  Returns (avg essential steps per delete op, total
    backlink+aux chain steps). *)

(** {1 EXP-9: superfluous-helping ablation (FR skip list)} *)

val superfluous_mode : help_superfluous:bool -> m:int -> float * int
(** [m] rounds of insert-tall-tower / delete / search-past-it, single
    process.  Returns (avg essential steps per op, dead nodes still linked
    at the end). *)

(** {1 EXP-13/15: the tail adversary for skip lists} *)

type sl_target = {
  insert1 : int -> bool;  (** height-1 insert *)
  sdelete : int -> bool;
  prefill : int -> unit;  (** deterministic-height insert of one key *)
}

val tz_height : int -> int
(** Perfect-skip-list profile: trailing zeros of the key plus one. *)

val fr_sl_target : unit -> sl_target
val fraser_sl_target : unit -> sl_target
val st_sl_target : unit -> sl_target

val sl_tail_adversary :
  n:int -> q:int -> rounds:int -> (unit -> sl_target) -> float
(** The EXP-2 schedule over a skip list with [tz_height] prefill heights;
    returns the inserter recovery steps per round per inserter. *)

(** {1 Shape-lock wrappers (used by test/test_experiments.ml)} *)

val exp2_recovery : n:int -> float * float
(** (FR recovery/round, Harris recovery/round) at q=4, rounds=n/2. *)

val exp3_avg : m:int -> float * float
(** (Valois avg steps/op, FR avg steps/op). *)

val exp9_avg : m:int -> float * float
(** (no-helping avg, helping avg). *)

val exp13_recovery : n:int -> float * float
(** (FR skip-list recovery/round, Fraser recovery/round). *)
