(** Bounded recorder of the shared-memory actions a simulation executes.
    Attach {!on_step} as the [~on_step] callback of {!Sim.run}; the last
    [capacity] steps stay available for rendering. *)

type entry = { t_index : int; t_pid : Sim.pid; t_kind : Sim_effect.step_kind }

type t

val create : ?capacity:int -> unit -> t
val on_step : t -> Sim.state -> Sim.pid -> unit
val total : t -> int
(** Steps observed since creation (may exceed capacity). *)

val entries : t -> entry list
(** Oldest-first entries still buffered. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
