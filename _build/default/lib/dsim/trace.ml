(* Schedule traces: a bounded recorder of the shared-memory actions a
   simulation executes, attachable as an [on_step] callback.  Useful for
   debugging adversarial policies and for rendering executions (the FIG-1/2
   regenerators use a structural variant of the same idea). *)

type entry = { t_index : int; t_pid : Sim.pid; t_kind : Sim_effect.step_kind }

type t = {
  capacity : int;
  buf : entry option array;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  { capacity; buf = Array.make capacity None; total = 0 }

(* The callback to pass as [Sim.run ~on_step].  Keeps the last [capacity]
   steps. *)
let on_step t (st : Sim.state) (_pid : Sim.pid) =
  match Sim.last_step st with
  | None -> ()
  | Some (pid, kind) ->
      t.buf.(t.total mod t.capacity) <-
        Some { t_index = t.total; t_pid = pid; t_kind = kind };
      t.total <- t.total + 1

let total t = t.total

(* Oldest-first entries still in the buffer. *)
let entries t =
  let n = min t.total t.capacity in
  let start = t.total - n in
  List.init n (fun i ->
      match t.buf.((start + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

let pp_entry fmt e =
  Format.fprintf fmt "%4d p%d %s" e.t_index e.t_pid
    (Sim_effect.step_kind_to_string e.t_kind)

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list pp_entry)
    (entries t)

(* Compact single-line rendering: "p0:read p1:flag-cas ...". *)
let to_string t =
  entries t
  |> List.map (fun e ->
         Printf.sprintf "p%d:%s" e.t_pid
           (Sim_effect.step_kind_to_string e.t_kind))
  |> String.concat " "
