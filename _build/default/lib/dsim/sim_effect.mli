(** Effects shared between the simulator's memory and its scheduler.

    Every shared-memory access performs {!extension-Step} {e before}
    executing its action: the scheduler captures the continuation there, so
    the set of pending steps describes exactly what each process is about to
    do next - which is what scripted adversaries (e.g. the Section 3.1
    construction) inspect to decide whom to run.  {!extension-Note}s are
    instantaneous annotations (cost-model events, operation boundaries) that
    are not scheduling points. *)

type step_kind =
  | Read
  | Write
  | Cas of Lf_kernel.Mem_event.cas_kind
  | Pause

type note =
  | Ev of Lf_kernel.Mem_event.t
  | Cas_ok of Lf_kernel.Mem_event.cas_kind
  | Cas_fail of Lf_kernel.Mem_event.cas_kind
  | Op_begin of int
      (** harness-supplied n(S): structure size at invocation *)
  | Op_end

type _ Effect.t +=
  | Step : step_kind -> unit Effect.t
  | Note : note -> unit Effect.t

val step_kind_to_string : step_kind -> string
