(** The simulator's shared memory: a [Lf_kernel.Mem.S] whose every operation
    is a deterministic scheduling point.

    Cells are plain mutable records - safe because the scheduler interleaves
    processes cooperatively on one domain, and a resumed process executes
    its pending action before any other process can run.

    Code touching such cells must run either inside a simulated process
    (under {!Sim.run}) or under {!Sim.quiet}; anywhere else the performed
    effects are unhandled. *)

include Lf_kernel.Mem.S
