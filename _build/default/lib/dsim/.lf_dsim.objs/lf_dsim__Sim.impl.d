lib/dsim/sim.ml: Array Effect Lf_kernel List Option Sim_effect
