lib/dsim/sim_mem.mli: Lf_kernel
