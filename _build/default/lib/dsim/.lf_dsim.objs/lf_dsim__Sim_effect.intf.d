lib/dsim/sim_effect.mli: Effect Lf_kernel
