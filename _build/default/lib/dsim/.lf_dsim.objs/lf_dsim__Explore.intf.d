lib/dsim/explore.mli: Sim
