lib/dsim/explore.ml: Array List Sim
