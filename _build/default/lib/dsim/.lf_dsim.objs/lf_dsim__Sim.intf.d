lib/dsim/sim.mli: Lf_kernel Sim_effect
