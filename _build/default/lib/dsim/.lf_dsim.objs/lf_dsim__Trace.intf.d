lib/dsim/trace.mli: Format Sim Sim_effect
