lib/dsim/sim_effect.ml: Effect Lf_kernel
