lib/dsim/trace.ml: Array Format List Printf Sim Sim_effect String
