lib/dsim/sim_mem.ml: Effect Sim_effect
