lib/core/fr_list.ml: Bool Format Lf_kernel List Option
