lib/core/fr_list.mli: Lf_kernel
