(** Valois's lock-free linked list (PODC 1995), the paper's citation [17]:
    auxiliary nodes between cells, cursor-based operations, back_links set
    on deletion to the cursor's (possibly already deleted) predecessor.

    The structural weakness the paper discusses in Section 2 — back_link
    chains of deleted cells can grow with the number of operations, and a
    deletion's cleanup walks the whole chain — is reproduced by EXP-3
    (average cost Omega(m) while list size and contention stay O(1)). *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t

  val fold : 'a t -> ('b -> key -> 'a -> 'b) -> 'b -> 'b
end

module Atomic_int :
  module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
