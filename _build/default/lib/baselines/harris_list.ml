(* Harris's lock-free linked list (DISC 2001), the paper's primary
   comparison target (Section 3.1).

   Each node's successor field carries a single mark bit; deletion is
   two-step (mark, then unlink).  The defining behavioural difference from
   the Fomitchev-Ruppert list: when a C&S fails because of interference, the
   operation *restarts its search from the head of the list*.  Section 3.1
   of the paper constructs executions where this costs Omega(n-bar * c-bar)
   per operation on average; EXP-2 reproduces that execution against this
   implementation. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) = struct
  module BK = Lf_kernel.Ordered.Bounded (K)
  module Ev = Lf_kernel.Mem_event

  type key = K.t

  type 'a node = {
    key : K.t Lf_kernel.Ordered.bounded;
    elt : 'a option;
    succ : 'a succ M.aref;
  }

  and 'a succ = { right : 'a link; mark : bool }
  and 'a link = Null | Node of 'a node

  type 'a t = { head : 'a node; tail : 'a node }

  let name = "harris-list"

  let create () =
    let tail =
      { key = Pos_inf; elt = None; succ = M.make { right = Null; mark = false } }
    in
    let head =
      {
        key = Neg_inf;
        elt = None;
        succ = M.make { right = Node tail; mark = false };
      }
    in
    { head; tail }

  let same_node l n = match l with Node m -> m == n | Null -> false

  (* Harris's search: returns (left, left_succ, right) where left.key < k <=
     right.key, both unmarked, and at some instant left.succ was exactly
     [left_succ] with [left_succ.right = right] (chains of marked nodes in
     between are excised with one C&S, restarting from the head if it
     fails). *)
  let rec search t k =
    (* Phase 1: locate left (last unmarked node with key < k) and right
       (first node with key >= k reached through unmarked-or-marked links). *)
    let left = ref t.head in
    let left_succ = ref (M.get t.head.succ) in
    let right =
      let rec go tn tsucc =
        if not tsucc.mark then begin
          left := tn;
          left_succ := tsucc
        end;
        match tsucc.right with
        | Null -> t.tail
        | Node nxt ->
            M.event Ev.Curr_update;
            if nxt == t.tail then nxt
            else
              let nsucc = M.get nxt.succ in
              if nsucc.mark || BK.lt nxt.key k then go nxt nsucc else nxt
      in
      go t.head !left_succ
    in
    let left = !left and left_succ = !left_succ in
    if same_node left_succ.right right then
      (* Phase 2: adjacent.  If right got marked meanwhile, start over. *)
      if right != t.tail && (M.get right.succ).mark then begin
        M.event Ev.Retry;
        search t k
      end
      else (left, left_succ, right)
    else begin
      (* Phase 3: excise the marked chain between left and right. *)
      let ns = { right = Node right; mark = false } in
      if M.cas left.succ ~kind:Ev.Physical_delete ~expect:left_succ ns then
        if right != t.tail && (M.get right.succ).mark then begin
          M.event Ev.Retry;
          search t k
        end
        else (left, ns, right)
      else begin
        M.event Ev.Retry;
        search t k
      end
    end

  let find t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let _, _, right = search t kb in
    if right != t.tail && BK.equal right.key kb then right.elt else None

  let mem t k = Option.is_some (find t k)

  let insert t k elt =
    let kb = Lf_kernel.Ordered.Mid k in
    let rec loop () =
      let left, left_succ, right = search t kb in
      if right != t.tail && BK.equal right.key kb then false
      else begin
        let nn =
          { key = kb; elt = Some elt; succ = M.make { right = Node right; mark = false } }
        in
        if
          M.cas left.succ ~kind:Ev.Insertion ~expect:left_succ
            { right = Node nn; mark = false }
        then true
        else begin
          (* Restart from the head: this is the behaviour Section 3.1
             penalizes. *)
          M.event Ev.Retry;
          loop ()
        end
      end
    in
    loop ()

  let delete t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let rec loop () =
      let left, left_succ, right = search t kb in
      if right == t.tail || not (BK.equal right.key kb) then false
      else begin
        let rsucc = M.get right.succ in
        if rsucc.mark then begin
          M.event Ev.Retry;
          loop ()
        end
        else if
          M.cas right.succ ~kind:Ev.Marking ~expect:rsucc
            { rsucc with mark = true }
        then begin
          (* One attempt to unlink; on failure let a search clean up. *)
          if
            not
              (M.cas left.succ ~kind:Ev.Physical_delete ~expect:left_succ
                 { right = rsucc.right; mark = false })
          then ignore (search t kb);
          true
        end
        else begin
          M.event Ev.Retry;
          loop ()
        end
      end
    in
    loop ()

  let fold t f acc =
    let rec go acc = function
      | Null -> acc
      | Node n -> (
          let s = M.get n.succ in
          match (n.key, n.elt) with
          | Mid k, Some e when not s.mark -> go (f acc k e) s.right
          | _ -> go acc s.right)
    in
    go acc (M.get t.head.succ).right

  let to_list t = List.rev (fold t (fun acc k e -> (k, e) :: acc) [])
  let length t = fold t (fun acc _ _ -> acc + 1) 0

  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    let rec go prev_key = function
      | Null -> fail "harris-list: tail not reached"
      | Node n ->
          if not (BK.lt prev_key n.key) then fail "harris-list: keys unsorted";
          let s = M.get n.succ in
          if n == t.tail then begin
            if s.right <> Null then fail "harris-list: tail has successor"
          end
          else begin
            if s.mark then fail "harris-list: marked node at quiescence";
            go n.key s.right
          end
    in
    go t.head.key (M.get t.head.succ).right

  (* Introspection for the deletion-protocol trace (Figure 1) and tests;
     meaningful only at quiescence or inside the simulator. *)
  module Debug = struct
    type cell = {
      key : K.t Lf_kernel.Ordered.bounded;
      marked : bool;
      is_sentinel : bool;
    }

    let physical_chain t =
      let rec go acc n =
        let s = M.get n.succ in
        let acc =
          { key = n.key; marked = s.mark; is_sentinel = n == t.head || n == t.tail }
          :: acc
        in
        match s.right with Null -> List.rev acc | Node m -> go acc m
      in
      go [] t.head
  end
end

module Atomic_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
