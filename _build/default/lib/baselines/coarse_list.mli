(** Coarse-grained lock-based baseline: one global mutex around the
    sequential sorted list. *)

module Make (K : Lf_kernel.Ordered.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t
end

module Int : Lf_kernel.Dict_intf.S with type key = int
