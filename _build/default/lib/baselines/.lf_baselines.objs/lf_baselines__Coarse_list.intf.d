lib/baselines/coarse_list.mli: Lf_kernel
