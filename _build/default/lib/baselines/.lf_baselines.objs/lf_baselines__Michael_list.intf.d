lib/baselines/michael_list.mli: Lf_kernel
