lib/baselines/binary_heap.mli:
