lib/baselines/lazy_list.ml: Atomic Format Fun Lf_kernel List Mutex Option
