lib/baselines/harris_list.ml: Format Lf_kernel List Option
