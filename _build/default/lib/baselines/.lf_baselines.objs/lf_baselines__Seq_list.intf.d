lib/baselines/seq_list.mli: Lf_kernel
