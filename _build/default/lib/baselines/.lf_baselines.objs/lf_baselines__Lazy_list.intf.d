lib/baselines/lazy_list.mli: Lf_kernel
