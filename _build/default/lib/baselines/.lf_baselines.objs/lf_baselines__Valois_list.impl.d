lib/baselines/valois_list.ml: Format Lf_kernel List Option
