lib/baselines/valois_list.mli: Lf_kernel
