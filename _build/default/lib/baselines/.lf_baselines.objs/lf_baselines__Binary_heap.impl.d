lib/baselines/binary_heap.ml: Array Fun Mutex
