lib/baselines/michael_list.ml: Format Lf_kernel List Option
