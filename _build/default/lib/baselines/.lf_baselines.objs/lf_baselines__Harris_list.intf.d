lib/baselines/harris_list.mli: Lf_kernel
