lib/baselines/seq_list.ml: Lf_kernel List Option
