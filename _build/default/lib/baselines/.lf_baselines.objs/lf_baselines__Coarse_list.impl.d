lib/baselines/coarse_list.ml: Fun Lf_kernel Mutex Seq_list
