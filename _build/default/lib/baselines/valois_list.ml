(* Valois's lock-free linked list (PODC 1995), cited as [17] by the paper.

   Normal cells are separated by *auxiliary* nodes; all insertions and
   deletions C&S the successor field of an auxiliary node, which sidesteps
   the delete/insert race without mark bits.  A cursor is the triple
   (pre_cell, pre_aux, target).  Deleting a cell excises it with a single
   C&S on [pre_aux.next], leaving the deleted cell's own auxiliary node in
   the chain; the cell's [back_link] is then set to its predecessor and a
   cleanup pass walks back over back_links to a live cell and collapses the
   accumulated chain of adjacent auxiliary nodes.

   Two structural facts this implementation relies on (and that the tests
   check): an auxiliary node's successor field is frozen once it points to
   another auxiliary node (every C&S on it expects a cell), so collapsing a
   cell's [next] pointer past such nodes is safe; and excision leaves the
   deleted cell's auxiliary node in the chain, so traversals that entered a
   deleted region still reach the live list.

   The cost pathology the paper ascribes to this design (Section 2): chains
   of back_links and of frozen auxiliary nodes can grow with the number of
   operations, and an operation holding a stale cursor pays for the whole
   chain - executions exist with average cost Omega(m_E) even when the list
   size and contention stay O(1).  EXP-3 constructs one. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) = struct
  module BK = Lf_kernel.Ordered.Bounded (K)
  module Ev = Lf_kernel.Mem_event

  type key = K.t

  type 'a cell = {
    key : K.t Lf_kernel.Ordered.bounded;
    elt : 'a option;
    next : 'a link M.aref; (* an Aux for every cell except the last sentinel *)
    back_link : 'a link M.aref; (* Nil until deleted, then Cell predecessor *)
  }

  and 'a aux = { aux_next : 'a link M.aref }
  and 'a link = Nil | Cell of 'a cell | Aux of 'a aux

  type 'a t = { first : 'a cell; last : 'a cell }

  type 'a cursor = {
    mutable pre_cell : 'a cell;
    mutable pre_aux : 'a aux;
    mutable target : 'a cell;
    mutable target_link : 'a link;
        (* the physical link read from pre_aux.next; what C&S's expect *)
  }

  let name = "valois-list"

  let create () =
    let last =
      { key = Pos_inf; elt = None; next = M.make Nil; back_link = M.make Nil }
    in
    let aux0 = { aux_next = M.make (Cell last) } in
    let first =
      {
        key = Neg_inf;
        elt = None;
        next = M.make (Aux aux0);
        back_link = M.make Nil;
      }
    in
    { first; last }

  let aux_of = function
    | Aux a -> a
    | Cell _ | Nil -> invalid_arg "Valois_list: expected an auxiliary node"

  (* Bring the cursor up to date: make [target]/[target_link] the first cell
     reachable from [pre_aux], walking (and opportunistically collapsing)
     any chain of auxiliary nodes left behind by deletions. *)
  let update t c =
    let n = M.get c.pre_aux.aux_next in
    if n == c.target_link then ()
    else begin
      let rec go p n =
        match n with
        | Aux a ->
            M.event Ev.Aux_step;
            (* Collapse: swing pre_cell.next past the frozen aux [p]. *)
            let pn = M.get c.pre_cell.next in
            (match pn with
            | Aux x when x == p ->
                ignore
                  (M.cas c.pre_cell.next ~kind:Ev.Other_cas ~expect:pn (Aux a))
            | Aux _ | Cell _ | Nil -> ());
            go a (M.get a.aux_next)
        | Cell d ->
            c.pre_aux <- p;
            c.target <- d;
            c.target_link <- n
        | Nil ->
            c.pre_aux <- p;
            c.target <- t.last;
            c.target_link <- n
      in
      go c.pre_aux n
    end

  let cursor_at_first t =
    let a = aux_of (M.get t.first.next) in
    let c =
      { pre_cell = t.first; pre_aux = a; target = t.first; target_link = Nil }
    in
    update t c;
    c

  (* Advance the cursor one cell to the right. *)
  let step t c =
    if c.target == t.last then false
    else begin
      M.event Ev.Curr_update;
      c.pre_cell <- c.target;
      c.pre_aux <- aux_of (M.get c.target.next);
      c.target_link <- Nil;
      update t c;
      true
    end

  (* Position the cursor so that pre_cell.key < k <= target.key. *)
  let locate t k =
    let c = cursor_at_first t in
    let rec go () = if BK.lt c.target.key k && step t c then go () in
    go ();
    c

  let try_insert c q =
    (* q.next is already an Aux whose aux_next we (privately) point at the
       target before publishing. *)
    let a = aux_of (M.get q.next) in
    M.set a.aux_next c.target_link;
    M.cas c.pre_aux.aux_next ~kind:Ev.Insertion ~expect:c.target_link (Cell q)

  (* Excise [c.target]; on success set its back_link, walk back_links to a
     live cell and collapse the auxiliary chain after it. *)
  let try_delete t c =
    let d = c.target in
    if d == t.last then false
    else begin
      let n = M.get d.next in
      if
        M.cas c.pre_aux.aux_next ~kind:Ev.Physical_delete ~expect:c.target_link
          n
      then begin
        M.set d.back_link (Cell c.pre_cell);
        (* Cleanup: find the closest live predecessor ... *)
        let rec back p =
          match M.get p.back_link with
          | Cell b ->
              M.event Ev.Backlink_step;
              back b
          | Nil | Aux _ -> p
        in
        let p = back c.pre_cell in
        (* ... and collapse the chain of auxiliary nodes that follows it. *)
        (match M.get p.next with
        | Aux pa ->
            let rec collapse pa =
              match M.get pa.aux_next with
              | Aux a ->
                  M.event Ev.Aux_step;
                  let pn = M.get p.next in
                  (match pn with
                  | Aux x when x == pa ->
                      ignore
                        (M.cas p.next ~kind:Ev.Other_cas ~expect:pn (Aux a))
                  | Aux _ | Cell _ | Nil -> ());
                  collapse a
              | Cell _ | Nil -> ()
            in
            collapse pa
        | Cell _ | Nil -> ());
        true
      end
      else false
    end

  let find t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let c = locate t kb in
    if BK.equal c.target.key kb then c.target.elt else None

  let mem t k = Option.is_some (find t k)

  let insert t k elt =
    let kb = Lf_kernel.Ordered.Mid k in
    let c = locate t kb in
    let q =
      {
        key = kb;
        elt = Some elt;
        next = M.make (Aux { aux_next = M.make Nil });
        back_link = M.make Nil;
      }
    in
    let rec loop () =
      if BK.equal c.target.key kb then false
      else if try_insert c q then true
      else begin
        M.event Ev.Retry;
        update t c;
        (* The cursor may now sit before the right position again; walk
           forward if new smaller keys appeared. *)
        let rec reposition () =
          if BK.lt c.target.key kb && step t c then reposition ()
        in
        reposition ();
        loop ()
      end
    in
    loop ()

  let delete t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let c = locate t kb in
    let rec loop () =
      if not (BK.equal c.target.key kb) then false
      else if try_delete t c then true
      else begin
        M.event Ev.Retry;
        update t c;
        let rec reposition () =
          if BK.lt c.target.key kb && step t c then reposition ()
        in
        reposition ();
        loop ()
      end
    in
    loop ()

  (* Quiescent traversal of live cells. *)
  let fold t f acc =
    let rec through_aux acc l =
      match l with
      | Nil -> acc
      | Aux a -> through_aux acc (M.get a.aux_next)
      | Cell d -> (
          if d == t.last then acc
          else
            let acc =
              match (d.key, d.elt) with
              | Mid k, Some e -> f acc k e
              | _ -> acc
            in
            through_aux acc (M.get d.next))
    in
    through_aux acc (M.get t.first.next)

  let to_list t = List.rev (fold t (fun acc k e -> (k, e) :: acc) [])
  let length t = fold t (fun acc _ _ -> acc + 1) 0

  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    let rec go prev_key l seen_last =
      match l with
      | Nil ->
          if not seen_last then fail "valois-list: chain ends before last"
      | Aux a -> go prev_key (M.get a.aux_next) seen_last
      | Cell d ->
          if not (BK.lt prev_key d.key) then fail "valois-list: keys unsorted";
          if M.get d.back_link <> Nil then
            fail "valois-list: deleted cell still reachable at quiescence";
          if d == t.last then go d.key Nil true
          else go d.key (M.get d.next) seen_last
    in
    go t.first.key (M.get t.first.next) false
end

module Atomic_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
