(* Michael's lock-free list (SPAA 2002), cited as [8] by the paper.

   Built on Harris's marking design but with a search that unlinks marked
   nodes one at a time as it goes (which is what makes it compatible with
   safe memory reclamation - moot under OCaml's GC, but we keep the
   traversal structure).  Like Harris's list, any interference makes the
   traversal restart from the head. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) = struct
  module BK = Lf_kernel.Ordered.Bounded (K)
  module Ev = Lf_kernel.Mem_event

  type key = K.t

  type 'a node = {
    key : K.t Lf_kernel.Ordered.bounded;
    elt : 'a option;
    succ : 'a succ M.aref;
  }

  and 'a succ = { right : 'a link; mark : bool }
  and 'a link = Null | Node of 'a node

  type 'a t = { head : 'a node; tail : 'a node }

  let name = "michael-list"

  let create () =
    let tail =
      { key = Pos_inf; elt = None; succ = M.make { right = Null; mark = false } }
    in
    let head =
      {
        key = Neg_inf;
        elt = None;
        succ = M.make { right = Node tail; mark = false };
      }
    in
    { head; tail }

  (* Michael's find: returns (prev, prev_succ, curr) with prev.key < k <=
     curr.key, prev unmarked at observation time and prev_succ.right = curr.
     Restarts from the head whenever the window is invalidated. *)
  let rec search t k =
    let rec advance prev prev_succ =
      match prev_succ.right with
      | Null -> (prev, prev_succ, t.tail)
      | Node curr ->
          if curr == t.tail then (prev, prev_succ, curr)
          else begin
            let curr_succ = M.get curr.succ in
            (* Re-validate the window before acting on it. *)
            let ps' = M.get prev.succ in
            if not (ps' == prev_succ) then begin
              M.event Ev.Retry;
              search t k
            end
            else if curr_succ.mark then
              (* Unlink the single marked node [curr]. *)
              let ns = { right = curr_succ.right; mark = false } in
              if M.cas prev.succ ~kind:Ev.Physical_delete ~expect:prev_succ ns
              then advance prev ns
              else begin
                M.event Ev.Retry;
                search t k
              end
            else if not (BK.lt curr.key k) then (prev, prev_succ, curr)
            else begin
              M.event Ev.Curr_update;
              advance curr curr_succ
            end
          end
    in
    advance t.head (M.get t.head.succ)

  let find t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let _, _, curr = search t kb in
    if curr != t.tail && BK.equal curr.key kb then curr.elt else None

  let mem t k = Option.is_some (find t k)

  let insert t k elt =
    let kb = Lf_kernel.Ordered.Mid k in
    let rec loop () =
      let prev, prev_succ, curr = search t kb in
      if curr != t.tail && BK.equal curr.key kb then false
      else begin
        let nn =
          { key = kb; elt = Some elt; succ = M.make { right = Node curr; mark = false } }
        in
        if
          M.cas prev.succ ~kind:Ev.Insertion ~expect:prev_succ
            { right = Node nn; mark = false }
        then true
        else begin
          M.event Ev.Retry;
          loop ()
        end
      end
    in
    loop ()

  let delete t k =
    let kb = Lf_kernel.Ordered.Mid k in
    let rec loop () =
      let prev, prev_succ, curr = search t kb in
      if curr == t.tail || not (BK.equal curr.key kb) then false
      else begin
        let curr_succ = M.get curr.succ in
        if curr_succ.mark then begin
          M.event Ev.Retry;
          loop ()
        end
        else if
          M.cas curr.succ ~kind:Ev.Marking ~expect:curr_succ
            { curr_succ with mark = true }
        then begin
          if
            not
              (M.cas prev.succ ~kind:Ev.Physical_delete ~expect:prev_succ
                 { right = curr_succ.right; mark = false })
          then ignore (search t kb);
          true
        end
        else begin
          M.event Ev.Retry;
          loop ()
        end
      end
    in
    loop ()

  let fold t f acc =
    let rec go acc = function
      | Null -> acc
      | Node n -> (
          let s = M.get n.succ in
          match (n.key, n.elt) with
          | Mid k, Some e when not s.mark -> go (f acc k e) s.right
          | _ -> go acc s.right)
    in
    go acc (M.get t.head.succ).right

  let to_list t = List.rev (fold t (fun acc k e -> (k, e) :: acc) [])
  let length t = fold t (fun acc _ _ -> acc + 1) 0

  let check_invariants t =
    let fail fmt = Format.kasprintf failwith fmt in
    let rec go prev_key = function
      | Null -> fail "michael-list: tail not reached"
      | Node n ->
          if not (BK.lt prev_key n.key) then fail "michael-list: keys unsorted";
          let s = M.get n.succ in
          if n == t.tail then begin
            if s.right <> Null then fail "michael-list: tail has successor"
          end
          else begin
            if s.mark then fail "michael-list: marked node at quiescence";
            go n.key s.right
          end
    in
    go t.head.key (M.get t.head.succ).right
end

module Atomic_int = Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
