(** Harris's lock-free linked list (DISC 2001), the paper's primary
    comparison target (its citation [3]).

    Mark-bit two-step deletion; a failed C&S makes the operation restart its
    search from the head.  Section 3.1 of the paper constructs executions
    where that restart costs Omega(n-bar * c-bar) per operation on average —
    EXP-2 reproduces them against this implementation. *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t

  val fold : 'a t -> ('b -> key -> 'a -> 'b) -> 'b -> 'b

  (** Quiescent / simulator-only introspection (Figure 1 traces). *)
  module Debug : sig
    type cell = {
      key : K.t Lf_kernel.Ordered.bounded;
      marked : bool;
      is_sentinel : bool;
    }

    val physical_chain : 'a t -> cell list
  end
end

module Atomic_int :
  module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
