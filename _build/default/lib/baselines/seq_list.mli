(** Plain sequential sorted linked list: the correctness oracle for the
    concurrent lists and the "necessary cost" reference of the paper's
    amortized analysis (the steps even a sequential algorithm must take). *)

module Make (K : Lf_kernel.Ordered.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t
end

module Int : Lf_kernel.Dict_intf.S with type key = int
