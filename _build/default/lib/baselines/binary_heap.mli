(** Array-based binary min-heap plus a mutex-protected wrapper: the
    classical lock-based priority-queue baseline that skip-list based queues
    (Lotan-Shavit [13], Sundell-Tsigas [14]) are measured against
    (EXP-12). *)

module Seq : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> int -> 'a -> unit
  val pop_min : 'a t -> (int * 'a) option
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val check_invariants : 'a t -> unit
end

module Locked : sig
  type 'a t

  val name : string
  val create : unit -> 'a t
  val push : 'a t -> int -> 'a -> unit
  val pop_min : 'a t -> (int * 'a) option
  val length : 'a t -> int
  val is_empty : 'a t -> bool
  val check_invariants : 'a t -> unit
end
