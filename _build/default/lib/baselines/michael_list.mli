(** Michael's lock-free list (SPAA 2002), the paper's citation [8]:
    Harris-style marking with a traversal that unlinks marked nodes one at a
    time (the structure that makes it compatible with safe memory
    reclamation — moot under OCaml's GC, but the traversal and its
    restart-from-head behaviour are preserved). *)

module Make (K : Lf_kernel.Ordered.S) (M : Lf_kernel.Mem.S) : sig
  include Lf_kernel.Dict_intf.S with type key = K.t

  val fold : 'a t -> ('b -> key -> 'a -> 'b) -> 'b -> 'b
end

module Atomic_int :
  module type of Make (Lf_kernel.Ordered.Int) (Lf_kernel.Atomic_mem)
