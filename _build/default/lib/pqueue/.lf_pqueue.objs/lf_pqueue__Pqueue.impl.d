lib/pqueue/pqueue.ml: Atomic Format Int Lf_kernel Lf_skiplist
