lib/pqueue/pqueue.mli: Lf_kernel
