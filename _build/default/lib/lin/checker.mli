(** Linearizability checker for dictionary histories: Wing & Gold search
    with memoization on (set of linearized operations, abstract state).

    The abstract specification is an integer set:
    [find k] returns membership; [insert k] succeeds iff absent and adds;
    [delete k] succeeds iff present and removes.  An operation may be
    linearized next iff no other pending operation returned before it was
    invoked. *)

module IntSet : Set.S with type elt = int

val apply : IntSet.t -> History.op -> bool * IntSet.t
(** The sequential specification: result and next state. *)

type verdict = Linearizable | Not_linearizable

val check : ?init:IntSet.t -> History.t -> verdict
(** Decide linearizability against the dictionary specification starting
    from [init] (default empty).
    @raise Invalid_argument on histories longer than 62 entries (the
    linearized set is a bitmask; record short bursts). *)
