(* Concurrent histories of dictionary operations over integer keys.

   An entry records one completed operation: what it was, what it returned,
   and its real-time interval [inv, ret] (timestamps from a shared monotone
   counter).  Operation A precedes operation B iff A.ret < B.inv; the
   checker must respect that partial order. *)

type op = Find of int | Insert of int | Delete of int

type entry = {
  pid : int;
  op : op;
  ok : bool; (* find: present; insert/delete: succeeded *)
  inv : int;
  ret : int;
}

type t = entry list

let pp_op fmt = function
  | Find k -> Format.fprintf fmt "find(%d)" k
  | Insert k -> Format.fprintf fmt "insert(%d)" k
  | Delete k -> Format.fprintf fmt "delete(%d)" k

let pp_entry fmt e =
  Format.fprintf fmt "[p%d %a -> %b @@ %d..%d]" e.pid pp_op e.op e.ok e.inv
    e.ret

let pp fmt (h : t) =
  Format.fprintf fmt "@[<v>%a@]" (Format.pp_print_list pp_entry) h

(* A tiny recorder: a monotone counter plus an accumulator, safe for use
   from several domains (the counter is atomic; each domain accumulates
   locally and [merge]s after joining). *)
module Recorder = struct
  type r = { clock : int Atomic.t; all : entry list Atomic.t }

  let create () = { clock = Atomic.make 0; all = Atomic.make [] }
  let tick r = Atomic.fetch_and_add r.clock 1

  let add r entries =
    let rec go () =
      let old = Atomic.get r.all in
      if not (Atomic.compare_and_set r.all old (entries @ old)) then go ()
    in
    go ()

  let history r : t =
    List.sort (fun a b -> compare a.inv b.inv) (Atomic.get r.all)
end
