lib/lin/history.mli: Format
