lib/lin/history.ml: Atomic Format List
