lib/lin/checker.mli: History Set
