lib/lin/checker.ml: Array Hashtbl History Int Set
