(** Concurrent histories of dictionary operations over integer keys.

    An entry records one completed operation, its boolean outcome, and its
    real-time interval [inv .. ret] in ticks of a shared monotone counter;
    operation A precedes operation B iff [A.ret < B.inv], and the checker
    must respect that partial order. *)

type op = Find of int | Insert of int | Delete of int

type entry = {
  pid : int;
  op : op;
  ok : bool;  (** find: present; insert/delete: succeeded *)
  inv : int;
  ret : int;
}

type t = entry list

val pp_op : Format.formatter -> op -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

(** Multi-domain recorder: an atomic tick counter plus an accumulator;
    each domain records locally and merges after joining. *)
module Recorder : sig
  type r

  val create : unit -> r

  val tick : r -> int
  (** The next timestamp. *)

  val add : r -> entry list -> unit
  val history : r -> t
  (** All recorded entries, sorted by invocation time. *)
end
