(* Linearizability checker for dictionary histories (Wing & Gold search with
   memoization on (set of linearized operations, abstract state)).

   The abstract specification is an integer set:
     find(k)   returns (k in S),          S unchanged
     insert(k) returns (k not in S),      S := S + {k}
     delete(k) returns (k in S),          S := S - {k}

   An operation can be linearized next iff no *other* unlinearized operation
   returned before it was invoked.  Histories are limited to 62 entries so
   the linearized set fits a bitmask; the stress tests record short bursts,
   which is also what keeps the search tractable. *)

module IntSet = Set.Make (Int)

let apply (s : IntSet.t) (op : History.op) : bool * IntSet.t =
  match op with
  | Find k -> (IntSet.mem k s, s)
  | Insert k -> if IntSet.mem k s then (false, s) else (true, IntSet.add k s)
  | Delete k -> if IntSet.mem k s then (true, IntSet.remove k s) else (false, s)

type verdict = Linearizable | Not_linearizable

let check ?(init = IntSet.empty) (h : History.t) : verdict =
  let entries = Array.of_list h in
  let n = Array.length entries in
  if n > 62 then invalid_arg "Checker.check: history longer than 62 entries";
  let full = (1 lsl n) - 1 in
  let visited : (int * IntSet.t, unit) Hashtbl.t = Hashtbl.create 256 in
  (* e can come next given the set [done_] of already-linearized ops: no
     other pending op has returned before e's invocation. *)
  let minimal done_ i =
    let e = entries.(i) in
    let rec ok j =
      j >= n
      || ((j = i || done_ land (1 lsl j) <> 0 || entries.(j).ret >= e.inv)
          && ok (j + 1))
    in
    ok 0
  in
  let rec search done_ state =
    if done_ = full then true
    else if Hashtbl.mem visited (done_, state) then false
    else begin
      Hashtbl.add visited (done_, state) ();
      let rec try_ops i =
        if i >= n then false
        else if done_ land (1 lsl i) <> 0 then try_ops (i + 1)
        else if minimal done_ i then begin
          let e = entries.(i) in
          let res, state' = apply state e.op in
          if res = e.ok && search (done_ lor (1 lsl i)) state' then true
          else try_ops (i + 1)
        end
        else try_ops (i + 1)
      in
      try_ops 0
    end
  in
  if search 0 init then Linearizable else Not_linearizable
