(* lfdict: command-line playground for the lock-free dictionaries.

   Subcommands:
     throughput  run a workload against an implementation and report ops/s
     check       record concurrent histories and check linearizability
     chaos       run a workload under an injected-fault plan (--faults)
     list        show the available implementations

     trace       record an execution, emit Chrome trace-event JSON
     metrics     record an execution, emit a Prometheus text snapshot

     model       exhaustive small-scope DPOR certification + mutant gate

     serve       line-protocol TCP front behind the lib/svc pipeline
     call        tiny client for a running serve (smoke tests, CI)
     flightdump  ask a tracing serve to dump its flight recorder

   Examples:
     dune exec bin/lfdict.exe -- list
     dune exec bin/lfdict.exe -- model -i fr-list -i fr-skiplist --quick
     dune exec bin/lfdict.exe -- trace --sim --seed 7 -o out.trace.json --check
     dune exec bin/lfdict.exe -- metrics -i fr-skiplist -d 4
     dune exec bin/lfdict.exe -- throughput -i fr-skiplist -d 4 -n 100000
     dune exec bin/lfdict.exe -- throughput -i fr-list --hints off
     dune exec bin/lfdict.exe -- throughput -i fr-list --reuse off
     dune exec bin/lfdict.exe -- throughput -i lf-hashtable --batch 64
     dune exec bin/lfdict.exe -- check -i fr-list -s 50
     dune exec bin/lfdict.exe -- chaos -i fr-list \
       --faults "seed=7;crash:after-flag-cas:at=1:lane=0" *)

open Cmdliner

let impls : (string * (module Lf_workload.Runner.INT_DICT)) list =
  [
    ("fr-list", (module Lf_list.Fr_list.Atomic_int));
    ("fr-skiplist", (module Lf_skiplist.Fr_skiplist.Atomic_int));
    ("harris-list", (module Lf_baselines.Harris_list.Atomic_int));
    ("michael-list", (module Lf_baselines.Michael_list.Atomic_int));
    ("valois-list", (module Lf_baselines.Valois_list.Atomic_int));
    ("lazy-list", (module Lf_baselines.Lazy_list.Int));
    ("coarse-list", (module Lf_baselines.Coarse_list.Int));
    ("fraser-skiplist", (module Lf_skiplist.Fraser_skiplist.Atomic_int));
    ("st-skiplist", (module Lf_skiplist.St_skiplist.Atomic_int));
    ("locked-skiplist", (module Lf_skiplist.Locked_skiplist.Int));
    ("lf-hashtable", (module Lf_hashtable.Atomic_int));
  ]

(* --hints off variants: the same structures created with the per-domain
   predecessor caches disabled (the EXP-17 ablation, from the command
   line). *)
module Fr_list_nohints = struct
  include Lf_list.Fr_list.Atomic_int

  let name = "fr-list(-hints)"
  let create () = create_with ~use_hints:false ~use_flags:true ()
end

module Fr_skiplist_nohints = struct
  include Lf_skiplist.Fr_skiplist.Atomic_int

  let name = "fr-skiplist(-hints)"
  let create () = create_with ~use_hints:false ()
end

module Lf_hashtable_nohints = struct
  include Lf_hashtable.Atomic_int

  let name = "lf-hashtable(-hints)"
  let create () = create_with ~use_hints:false ()
end

let nohints_impls : (string * (module Lf_workload.Runner.INT_DICT)) list =
  [
    ("fr-list", (module Fr_list_nohints));
    ("fr-skiplist", (module Fr_skiplist_nohints));
    ("lf-hashtable", (module Lf_hashtable_nohints));
  ]

(* --reuse off variants: descriptor interning disabled, so every C&S
   attempt allocates fresh descriptors (the EXP-22 ablation baseline). *)
module Fr_list_noreuse = struct
  include Lf_list.Fr_list.Atomic_int

  let name = "fr-list(-reuse)"
  let create () = create_with ~reuse_descriptors:false ~use_flags:true ()
end

module Fr_skiplist_noreuse = struct
  include Lf_skiplist.Fr_skiplist.Atomic_int

  let name = "fr-skiplist(-reuse)"
  let create () = create_with ~reuse_descriptors:false ()
end

module Lf_hashtable_noreuse = struct
  include Lf_hashtable.Atomic_int

  let name = "lf-hashtable(-reuse)"
  let create () = create_with ~reuse_descriptors:false ()
end

let noreuse_impls : (string * (module Lf_workload.Runner.INT_DICT)) list =
  [
    ("fr-list", (module Fr_list_noreuse));
    ("fr-skiplist", (module Fr_skiplist_noreuse));
    ("lf-hashtable", (module Lf_hashtable_noreuse));
  ]

(* --batch n routes the op stream through the batched entry points
   (insert_batch / delete_batch / mem_batch), n operations per chunk. *)
let batched_impls ~hints :
    (string * (module Lf_workload.Runner.INT_DICT_BATCHED)) list =
  if hints then
    [
      ("fr-list", (module Lf_list.Fr_list.Atomic_int));
      ("fr-skiplist", (module Lf_skiplist.Fr_skiplist.Atomic_int));
      ("lf-hashtable", (module Lf_hashtable.Atomic_int));
    ]
  else
    [
      ("fr-list", (module Fr_list_nohints));
      ("fr-skiplist", (module Fr_skiplist_nohints));
      ("lf-hashtable", (module Lf_hashtable_nohints));
    ]

(* The FR structures instantiated over the protocol sanitizer: every C&S and
   store is validated against the deletion state machine (INV 1-5); a
   violation aborts with a structured report (event, per-process traces,
   chain snapshot). *)
module Checked_mem = Lf_check.Check_mem.Make (Lf_kernel.Atomic_mem)
module Checked_fr_list = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Checked_mem)
module Checked_fr_skiplist =
  Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Checked_mem)

let checked_impls : (string * (module Lf_workload.Runner.INT_DICT)) list =
  [
    ("fr-list", (module Checked_fr_list));
    ("fr-skiplist", (module Checked_fr_skiplist));
  ]

let resolve ?(reuse = true) name checked ~hints :
    (module Lf_workload.Runner.INT_DICT) =
  if checked then (
    if not hints then (
      prerr_endline "--hints off is not supported together with --checked";
      exit 2);
    if not reuse then (
      prerr_endline "--reuse off is not supported together with --checked";
      exit 2);
    match List.assoc_opt name checked_impls with
    | Some m -> m
    | None ->
        Printf.eprintf "--checked is available for: %s\n"
          (String.concat ", " (List.map fst checked_impls));
        exit 2)
  else if not reuse then (
    if not hints then (
      prerr_endline "--reuse off is not supported together with --hints off";
      exit 2);
    match List.assoc_opt name noreuse_impls with
    | Some m -> m
    | None ->
        Printf.eprintf "--reuse off is available for: %s\n"
          (String.concat ", " (List.map fst noreuse_impls));
        exit 2)
  else if not hints then
    match List.assoc_opt name nohints_impls with
    | Some m -> m
    | None ->
        Printf.eprintf "--hints off is available for: %s\n"
          (String.concat ", " (List.map fst nohints_impls));
        exit 2
  else List.assoc name impls

let impl_arg =
  Arg.(
    value
    & opt (enum (List.map (fun (n, _) -> (n, n)) impls)) "fr-skiplist"
    & info [ "i"; "impl" ] ~docv:"IMPL" ~doc:"Implementation under test.")

let checked_arg =
  Arg.(
    value & flag
    & info [ "checked" ]
        ~doc:
          "Run under the Lf_check.Check_mem protocol sanitizer (fr-list and \
           fr-skiplist).  Slower; any protocol violation aborts with a \
           structured report naming the broken invariant.")

let domains_arg =
  Arg.(value & opt int 2 & info [ "d"; "domains" ] ~docv:"N" ~doc:"Domains.")

let ops_arg =
  Arg.(
    value & opt int 50_000
    & info [ "n"; "ops" ] ~docv:"N" ~doc:"Operations per domain.")

let range_arg =
  Arg.(value & opt int 1024 & info [ "r"; "range" ] ~docv:"N" ~doc:"Key range.")

let mix_arg =
  Arg.(
    value & opt (pair ~sep:',' int int) (20, 20)
    & info [ "m"; "mix" ] ~docv:"I,D"
        ~doc:"Insert and delete percentages (rest are searches).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let seeds_arg =
  Arg.(
    value & opt int 30
    & info [ "s"; "seeds" ] ~docv:"N" ~doc:"Number of seeds / histories.")

let hints_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "hints" ] ~docv:"on|off"
        ~doc:
          "Per-domain predecessor caches (fr-list, fr-skiplist, \
           lf-hashtable).  $(b,off) recreates the EXP-17 ablation baseline.")

let reuse_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "reuse" ] ~docv:"on|off"
        ~doc:
          "Descriptor interning (fr-list, fr-skiplist, lf-hashtable).  \
           $(b,off) allocates fresh descriptors on every C&S attempt, \
           recreating the EXP-22 ablation baseline.")

let batch_arg =
  Arg.(
    value & opt int 0
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Issue operations through the batched entry points, $(docv) per \
           chunk (0 = one at a time; fr-list, fr-skiplist, lf-hashtable).")

let throughput_cmd =
  let run impl checked hints reuse batch domains ops range (ins, del) seed =
    let mix = { Lf_workload.Opgen.insert_pct = ins; delete_pct = del } in
    let r =
      if batch <= 0 then
        let (module D : Lf_workload.Runner.INT_DICT) =
          resolve ~reuse impl checked ~hints
        in
        Lf_workload.Runner.run_throughput
          (module D)
          ~domains ~ops_per_domain:ops ~key_range:range ~mix ~seed ()
      else begin
        if checked then (
          prerr_endline "--batch is not supported together with --checked";
          exit 2);
        if not reuse then (
          prerr_endline "--batch is not supported together with --reuse off";
          exit 2);
        let (module D : Lf_workload.Runner.INT_DICT_BATCHED) =
          match List.assoc_opt impl (batched_impls ~hints) with
          | Some m -> m
          | None ->
              Printf.eprintf "--batch is available for: %s\n"
                (String.concat ", "
                   (List.map fst (batched_impls ~hints:true)));
              exit 2
        in
        Lf_workload.Runner.run_throughput_batched
          (module D)
          ~domains ~ops_per_domain:ops ~batch ~key_range:range ~mix ~seed ()
      end
    in
    Printf.printf
      "%s%s%s: %d ops on %d domains in %.3fs -> %.0f ops/s (structure valid%s)\n"
      r.impl
      (if checked then " [checked]" else "")
      (if batch > 0 then Printf.sprintf " [batch %d]" batch else "")
      r.total_ops r.domains r.elapsed_s r.ops_per_s
      (if checked then ", no protocol violations" else "")
  in
  Cmd.v
    (Cmd.info "throughput" ~doc:"Measure workload throughput.")
    Term.(
      const run $ impl_arg $ checked_arg $ hints_arg $ reuse_arg $ batch_arg
      $ domains_arg $ ops_arg $ range_arg $ mix_arg $ seed_arg)

let check_cmd =
  let run impl checked domains seeds =
    let (module D : Lf_workload.Runner.INT_DICT) =
      resolve impl checked ~hints:true
    in
    let failed = ref 0 in
    for seed = 1 to seeds do
      let h =
        Lf_workload.Runner.run_recorded
          (module D)
          ~domains ~ops_per_domain:10 ~key_range:5
          ~mix:{ insert_pct = 40; delete_pct = 40 }
          ~seed ()
      in
      match Lf_lin.Checker.check h with
      | Lf_lin.Checker.Linearizable -> ()
      | Lf_lin.Checker.Not_linearizable ->
          incr failed;
          Format.printf "NOT LINEARIZABLE (seed %d):@\n%a@." seed
            Lf_lin.History.pp h
    done;
    Printf.printf "%s: %d/%d histories linearizable\n" D.name (seeds - !failed)
      seeds;
    if !failed > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Record histories and check linearizability.")
    Term.(const run $ impl_arg $ checked_arg $ domains_arg $ seeds_arg)

(* The fault-capable instantiations: the same structures over
   Fault_mem (Atomic_mem), which executes the installed plan against every
   shared access. *)
module Faulty_mem = Lf_fault.Fault_mem.Make (Lf_kernel.Atomic_mem)
module Faulty_fr_list = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Faulty_mem)
module Faulty_fr_skiplist =
  Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Faulty_mem)
module Faulty_harris =
  Lf_baselines.Harris_list.Make (Lf_kernel.Ordered.Int) (Faulty_mem)

let chaos_ops impl : (int -> bool) * (int -> bool) * (int -> bool) =
  match impl with
  | "fr-list" ->
      let t = Faulty_fr_list.create () in
      ( (fun k -> Faulty_fr_list.insert t k k),
        (fun k -> Faulty_fr_list.delete t k),
        fun k -> Faulty_fr_list.mem t k )
  | "fr-skiplist" ->
      let t = Faulty_fr_skiplist.create () in
      ( (fun k -> Faulty_fr_skiplist.insert t k k),
        (fun k -> Faulty_fr_skiplist.delete t k),
        fun k -> Faulty_fr_skiplist.mem t k )
  | "harris-list" ->
      let t = Faulty_harris.create () in
      ( (fun k -> Faulty_harris.insert t k k),
        (fun k -> Faulty_harris.delete t k),
        fun k -> Faulty_harris.mem t k )
  | other ->
      Printf.eprintf "chaos is available for: fr-list, fr-skiplist, \
                      harris-list (got %s)\n" other;
      exit 2

let faults_arg =
  Arg.(
    value & opt string ""
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Fault plan, e.g. \
           $(b,seed=7;cas-fail:flag-cas:p=0.3:burst=4;crash:after-flag-cas:at=1:lane=0). \
           Actions: $(b,cas-fail), $(b,crash), $(b,stall); points: \
           $(b,read), $(b,write), $(b,cas), a C&S kind \
           ($(b,insert-cas), $(b,flag-cas), $(b,mark-cas), $(b,unlink-cas)) \
           or $(b,after-)KIND; params: $(b,at=K), $(b,p=)/$(b,burst=), \
           $(b,n=) (stall rounds), $(b,lane=).  Empty = no faults.")

let window_arg =
  Arg.(
    value & opt float 0.3
    & info [ "w"; "window" ] ~docv:"S" ~doc:"Measured window in seconds.")

let budget_arg =
  Arg.(
    value & opt float 0.05
    & info [ "budget" ] ~docv:"S"
        ~doc:"Per-operation latency budget for the starvation watchdog.")

let chaos_cmd =
  let run impl faults domains range (ins, del) seed window budget =
    let plan =
      if faults = "" then Lf_fault.Fault.no_faults
      else
        match Lf_fault.Fault.plan_of_string faults with
        | Ok p -> p
        | Error e ->
            Printf.eprintf "bad --faults spec: %s\n" e;
            exit 2
    in
    let mix = { Lf_workload.Opgen.insert_pct = ins; delete_pct = del } in
    let insert, delete, find = chaos_ops impl in
    Faulty_mem.install plan;
    let r =
      Lf_workload.Runner.run_chaos ~budget_s:budget ~window_s:window
        ~sample:(fun () ->
          [ ("injected", List.length (Faulty_mem.injected ())) ])
        ~name:impl ~insert ~delete ~find ~domains ~key_range:range ~mix ~seed
        ()
    in
    let trace = Faulty_mem.injected () in
    Faulty_mem.uninstall ();
    Format.printf "%a@." Lf_workload.Runner.pp_chaos_report r;
    (match trace with
    | [] -> ()
    | _ ->
        Printf.printf "injected faults (first 10 of %d):\n" (List.length trace);
        List.iteri
          (fun i inj ->
            if i < 10 then
              Printf.printf "  %s\n" (Lf_fault.Fault.injected_to_string inj))
          trace);
    if r.c_watchdog_tripped then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a workload under an injected-fault plan and report survivor \
          throughput, crashes and starvation.  Exits 1 if the watchdog \
          trips.")
    Term.(
      const run $ impl_arg $ faults_arg $ domains_arg $ range_arg $ mix_arg
      $ seed_arg $ window_arg $ budget_arg)

let list_cmd =
  let run () =
    print_endline "available implementations (* = supports --checked):";
    List.iter
      (fun (n, _) ->
        Printf.printf "  %s%s\n" n
          (if List.mem_assoc n checked_impls then " *" else ""))
      impls
  in
  Cmd.v (Cmd.info "list" ~doc:"List available implementations.") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* trace / metrics: the lf_obs observability layer from the CLI.  The
   same structures once more, over Trace_mem (Atomic_mem) for wall-clock
   runs and Trace_mem (Sim_mem) for deterministic ones: under --sim the
   recorder's clock is the scheduler's step counter, so the emitted
   Chrome trace is a pure function of the seed (CI diffs two runs
   byte-for-byte). *)

module Traced_mem = Lf_obs.Trace_mem.Make (Lf_kernel.Atomic_mem)
module Traced_fr_list = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Traced_mem)
module Traced_fr_skiplist =
  Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Traced_mem)
module Traced_hashtable = Lf_hashtable.Make (Lf_hashtable.Int_key) (Traced_mem)

module Traced_sim_mem = Lf_obs.Trace_mem.Make (Lf_dsim.Sim_mem)
module Sim_fr_list = Lf_list.Fr_list.Make (Lf_kernel.Ordered.Int) (Traced_sim_mem)
module Sim_fr_skiplist =
  Lf_skiplist.Fr_skiplist.Make (Lf_kernel.Ordered.Int) (Traced_sim_mem)
module Sim_hashtable = Lf_hashtable.Make (Lf_hashtable.Int_key) (Traced_sim_mem)

let traced_impls : (string * (module Lf_workload.Runner.INT_DICT)) list =
  [
    ("fr-list", (module Traced_fr_list));
    ("fr-skiplist", (module Traced_fr_skiplist));
    ("lf-hashtable", (module Traced_hashtable));
  ]

let traced_resolve impl : (module Lf_workload.Runner.INT_DICT) =
  match List.assoc_opt impl traced_impls with
  | Some m -> m
  | None ->
      Printf.eprintf "tracing is available for: %s\n"
        (String.concat ", " (List.map fst traced_impls));
      exit 2

let sim_traced_ops impl : Lf_workload.Sim_driver.ops =
  match impl with
  | "fr-list" ->
      let t = Sim_fr_list.create () in
      {
        insert = (fun k -> Sim_fr_list.insert t k k);
        delete = (fun k -> Sim_fr_list.delete t k);
        find = (fun k -> Sim_fr_list.mem t k);
      }
  | "fr-skiplist" ->
      let t = Sim_fr_skiplist.create () in
      {
        insert = (fun k -> Sim_fr_skiplist.insert t k k);
        delete = (fun k -> Sim_fr_skiplist.delete t k);
        find = (fun k -> Sim_fr_skiplist.mem t k);
      }
  | "lf-hashtable" ->
      let t = Sim_hashtable.create () in
      {
        insert = (fun k -> Sim_hashtable.insert t k k);
        delete = (fun k -> Sim_hashtable.delete t k);
        find = (fun k -> Sim_hashtable.mem t k);
      }
  | other ->
      Printf.eprintf "tracing is available for: fr-list, fr-skiplist, \
                      lf-hashtable (got %s)\n" other;
      exit 2

(* Run a workload with the recorder at [level]; returns the divisor that
   converts recorder timestamps to the Chrome trace's time unit.  The
   prefill runs with recording off so collected data covers only the
   measured mix. *)
let observed_run ~level ~sim ~impl ~domains ~ops ~range ~mix ~seed =
  Lf_obs.Recorder.set_level Lf_obs.Recorder.Off;
  Lf_obs.Recorder.reset ();
  if sim then begin
    Lf_obs.Recorder.set_clock Lf_obs.Recorder.Sim_steps;
    let ops_r = sim_traced_ops impl in
    let filled =
      Lf_workload.Sim_driver.prefill ~key_range:range ~count:(range / 2)
        ~seed:(seed + 1) ops_r
    in
    Lf_obs.Recorder.set_level level;
    ignore
      (Lf_workload.Sim_driver.run_mixed ~policy:(Lf_dsim.Sim.Random seed)
         ~initial_size:filled ~procs:domains ~ops_per_proc:ops ~key_range:range
         ~mix ~seed ops_r
        : Lf_dsim.Sim.result);
    Lf_obs.Recorder.set_level Lf_obs.Recorder.Off;
    1
  end
  else begin
    Lf_obs.Recorder.set_clock Lf_obs.Recorder.Real;
    let (module D : Lf_workload.Runner.INT_DICT) = traced_resolve impl in
    Lf_obs.Recorder.set_level level;
    ignore
      (Lf_workload.Runner.run_throughput
         (module D)
         ~domains ~ops_per_domain:ops ~key_range:range ~mix ~seed ()
        : Lf_workload.Runner.throughput);
    Lf_obs.Recorder.set_level Lf_obs.Recorder.Off;
    1000 (* ns -> us, the trace format's native unit *)
  end

let write_output out text =
  match out with
  | "-" -> print_string text
  | f ->
      let oc = open_out_bin f in
      output_string oc text;
      close_out oc

let sim_arg =
  Arg.(
    value & flag
    & info [ "sim" ]
        ~doc:
          "Run under the deterministic simulator: lanes are simulated \
           processes, timestamps are scheduler steps, and the output is a \
           pure function of the seed.")

let out_arg =
  Arg.(
    value & opt string "-"
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file ($(b,-) = stdout).")

let validate_arg =
  Arg.(
    value & flag
    & info [ "check" ] ~doc:"Validate the emitted output; exit 1 if malformed.")

let trace_ops_arg =
  Arg.(
    value & opt int 300
    & info [ "n"; "ops" ] ~docv:"N" ~doc:"Operations per lane.")

let trace_cmd =
  let run impl sim domains ops range (ins, del) seed out validate =
    let mix = { Lf_workload.Opgen.insert_pct = ins; delete_pct = del } in
    let time_div =
      observed_run ~level:Lf_obs.Recorder.Tracing ~sim ~impl ~domains ~ops
        ~range ~mix ~seed
    in
    let json = Lf_obs.Chrome_trace.to_string ~time_div (Lf_obs.Recorder.events ()) in
    write_output out json;
    if out <> "-" then
      Printf.eprintf "wrote %s: %d events (%d dropped)\n" out
        (Lf_obs.Recorder.event_count ())
        (Lf_obs.Recorder.dropped ());
    if validate then
      match Lf_obs.Chrome_trace.check json with
      | Ok () -> prerr_endline "trace OK"
      | Error e ->
          Printf.eprintf "trace INVALID: %s\n" e;
          exit 1
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record an execution and emit Chrome trace-event JSON (load it in \
          chrome://tracing or Perfetto).  With $(b,--sim) the file is \
          byte-identical across reruns with the same seed.")
    Term.(
      const run $ impl_arg $ sim_arg $ domains_arg $ trace_ops_arg $ range_arg
      $ mix_arg $ seed_arg $ out_arg $ validate_arg)

let metrics_cmd =
  let run impl sim domains ops range (ins, del) seed out validate =
    let mix = { Lf_workload.Opgen.insert_pct = ins; delete_pct = del } in
    ignore
      (observed_run ~level:Lf_obs.Recorder.Histograms ~sim ~impl ~domains ~ops
         ~range ~mix ~seed
        : int);
    let text = Lf_obs.Prom.snapshot () in
    write_output out text;
    if validate then
      match Lf_obs.Prom.validate text with
      | Ok () -> prerr_endline "metrics OK"
      | Error e ->
          Printf.eprintf "metrics INVALID: %s\n" e;
          exit 1
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Record an execution and emit a Prometheus text-format snapshot: \
          operation and C&S counters, per-phase failure counts, latency \
          quantiles.")
    Term.(
      const run $ impl_arg $ sim_arg $ domains_arg $ trace_ops_arg $ range_arg
      $ mix_arg $ seed_arg $ out_arg $ validate_arg)

(* ------------------------------------------------------------------ *)
(* model: small-scope DPOR certification (lib/model).  Every scenario is
   explored exhaustively — schedules modulo the happens-before equivalence
   — under the structure's oracles, and the seeded fr-list mutants are run
   up the scope ladder as a coverage check on the checker itself.  The
   whole report is a pure function of the scenarios: two runs are
   byte-identical, which CI diffs. *)

let model_cmd =
  let structures_arg =
    Arg.(
      value
      & opt_all (enum (List.map (fun n -> (n, n)) Lf_model.Certify.structures)) []
      & info [ "i"; "impl" ] ~docv:"IMPL"
          ~doc:
            "Structure to certify (repeatable).  Default: all of them. \
             One of: $(docv) in fr-list, fr-skiplist, lf-hashtable, \
             pqueue, harris-list, valois-list, or the EXP-22 \
             interning-off ablations fr-list-noreuse and \
             fr-skiplist-noreuse.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "CI smoke scope: drop the 3-process scenarios (the 2-process \
             grids still run to exhaustion).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let no_mutants_arg =
    Arg.(
      value & flag
      & info [ "no-mutants" ]
          ~doc:"Skip the fr-list mutant-kill matrix (certification only).")
  in
  let run structures quick json no_mutants out =
    let structures =
      match structures with [] -> Lf_model.Certify.structures | l -> l
    in
    let cts = Lf_model.Certify.certify_all ~quick ~structures () in
    let kills =
      if no_mutants then None else Some (Lf_model.Certify.kill_matrix ())
    in
    let report =
      if json then
        let certs = String.trim (Lf_model.Certify.render_certificates ~json cts) in
        match kills with
        | None -> Printf.sprintf "{\"certificates\": %s}\n" certs
        | Some ks ->
            Printf.sprintf "{\"certificates\": %s,\n\"mutants\": %s}\n" certs
              (String.trim (Lf_model.Certify.render_kills ~json ks))
      else
        Lf_model.Certify.render_certificates ~json cts
        ^
        match kills with
        | None -> ""
        | Some ks -> Lf_model.Certify.render_kills ~json ks
    in
    write_output out report;
    let ok =
      Lf_model.Certify.certificates_ok cts
      && match kills with None -> true | Some ks -> Lf_model.Certify.kills_ok ks
    in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "model"
       ~doc:
         "Exhaustively model-check the structures at small scope with DPOR \
          (partial-order reduction over the deterministic Sim seam), run \
          every explored schedule under the protocol sanitizer and \
          linearizability oracles, and verify the seeded protocol mutants \
          are killed at minimal scope.  Exits 1 on any failure, truncated \
          scope, or surviving mutant.  Output is byte-identical across \
          runs.")
    Term.(
      const run $ structures_arg $ quick_arg $ json_arg $ no_mutants_arg
      $ out_arg)

(* ------------------------------------------------------------------ *)
(* serve / call: a minimal line-protocol TCP front over the service
   layer (lib/svc).  One request per line (PUT/DEL/GET/HEALTH/METRICS/
   QUIT/SHUTDOWN — see Lf_svc.Wire); every operation runs through the
   Svc pipeline, so deadlines, retry budgets, shedding and the breaker
   are all live behind the socket.  Sequential accept loop: this is the
   demo front for EXP-20 and the CI smoke, not a production server. *)

(* Wrap an implementation as Svc closures, with recorder spans around
   each operation so METRICS (the PR 4 Prometheus snapshot) has live
   operation counters and latency quantiles to report. *)
let svc_ops (module D : Lf_workload.Runner.INT_DICT) : Lf_svc.Svc.ops =
  let t = D.create () in
  let span op key f =
    Lf_obs.Recorder.span_begin ~op ~key;
    let ok = f () in
    Lf_obs.Recorder.span_end ~op ~ok;
    ok
  in
  {
    insert =
      (fun k v -> span Lf_obs.Obs_event.Insert k (fun () -> D.insert t k v));
    delete = (fun k -> span Lf_obs.Obs_event.Delete k (fun () -> D.delete t k));
    find =
      (fun k ->
        span Lf_obs.Obs_event.Find k (fun () -> Option.is_some (D.find t k)));
  }

let port_arg =
  Arg.(
    value & opt int 7071
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port on 127.0.0.1.")

let deadline_ms_arg =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:"Default per-request deadline in milliseconds (0 = none).")

let retry_arg =
  Arg.(
    value & opt int 0
    & info [ "retry" ] ~docv:"N"
        ~doc:"Retry failed operations up to $(docv) attempts total (0 = off).")

let retry_budget_arg =
  Arg.(
    value & opt int 0
    & info [ "retry-budget" ] ~docv:"N"
        ~doc:
          "Token-bucket retry budget: at most $(docv) retries outstanding, \
           one token regained per 100ms (0 = unlimited).")

let shed_arg =
  Arg.(
    value & opt int 0
    & info [ "shed" ] ~docv:"N"
        ~doc:
          "Load shedding: reject when more than $(docv) requests are \
           in flight, or when the deadline is infeasible against the \
           service-time estimate (0 = off).")

let breaker_flag =
  Arg.(
    value & flag
    & info [ "breaker" ]
        ~doc:
          "Circuit breaker: trip on a windowed failure/latency spike, \
           serve reads only while open, probe and recover.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard the keyspace over $(docv) dictionary instances behind a \
           consistent-hash router, each shard wrapped in its own \
           pipeline, so one faulted shard degrades only its own \
           keyspace.  HEALTH reports per-shard status; KILL <i> makes \
           shard $(i,i)'s backend fail (containment demo).  1 = the \
           plain single-instance server.")

let trace_requests_flag =
  Arg.(
    value & flag
    & info [ "trace-requests" ]
        ~doc:
          "End-to-end request tracing: every request runs under a causal \
           span tree (router fan-out, pipeline decisions, structure ops, \
           failed C&S attribution), the flight recorder retains completed \
           trees per domain, METRICS carries tail exemplars, and \
           anomalies (KILL, a breaker opening, SLO fast burn) dump a \
           trace bundle into --dump-dir.")

let dump_dir_arg =
  Arg.(
    value & opt string "flight-dumps"
    & info [ "dump-dir" ] ~docv:"DIR"
        ~doc:"Directory for flight-recorder dump bundles.")

let self_heal_flag =
  Arg.(
    value & flag
    & info [ "self-heal" ]
        ~doc:
          "Run the shard supervisor: watch per-shard health (breaker \
           state, shed rate, SLO fast burn) and evacuate slots off a \
           persistently-sick shard automatically — promoting the slot's \
           replica when one exists (--replicas), else copying to the \
           least-loaded healthy shard.  Hysteresis, per-tick move \
           budgets and exponential backoff keep healing from becoming a \
           migration storm.  HEAL reports supervisor status; heal \
           begin/end drop flight bundles under --trace-requests.  \
           Requires --shards > 1.")

let replicas_flag =
  Arg.(
    value & flag
    & info [ "replicas" ]
        ~doc:
          "Keep a lagged copy of every slot on the next shard over, fed \
           from an async apply journal.  Reads whose shard is dead (not \
           merely tripped) fail over to the copy and answer STALE <bool> \
           lag=<ticks> — staleness is always explicit on the wire, never \
           a silent OK.  REPLICAS reports per-slot lag; the supervisor \
           (--self-heal) promotes a replica when it evacuates the \
           primary.  Requires --shards > 1.")

let key_range_arg =
  Arg.(
    value & opt int 4096
    & info [ "key-range" ] ~docv:"N"
        ~doc:
          "Keyspace bound scanned by healing migrations: an evacuation \
           moves the keys in [0, $(docv)) that hash to the slot (same \
           contract as Router.rebalance).  Keys outside the bound are \
           still served and replicated, but not migrated.")

let serve_cmd =
  let run impl port deadline_ms retry budget shed breaker shards trace_requests
      dump_dir self_heal replicas key_range =
    Lf_obs.Recorder.set_level Lf_obs.Recorder.Off;
    Lf_obs.Recorder.reset ();
    Lf_obs.Recorder.set_clock Lf_obs.Recorder.Real;
    Lf_obs.Recorder.set_level Lf_obs.Recorder.Histograms;
    let (module D : Lf_workload.Runner.INT_DICT) =
      resolve impl false ~hints:true
    in
    let clock = Lf_svc.Clock.real () in
    let ms = Lf_svc.Clock.ms clock in
    let now () = Lf_svc.Clock.now clock in
    (* Tracing: the request spans and the recorder's structure-op spans
       must tick off the SAME clock, or op spans would not nest inside
       their request spans — align the recorder to the pipeline clock. *)
    if trace_requests then begin
      Lf_obs.Span.reset ();
      Lf_obs.Span.set_level Lf_obs.Span.Spans;
      Lf_obs.Recorder.set_clock (Lf_obs.Recorder.Manual now)
    end;
    (* The serve SLO: 99% of requests good over a 5s fast window and a
       60s slow window, quarter-second buckets.  Served counts as good;
       rejections and failures burn budget. *)
    let slo =
      Lf_obs.Slo.create ~target:0.99 ~bucket:(ms 250)
        ~windows:[ ms 5_000; ms 60_000 ]
        ()
    in
    let cfg =
      Lf_svc.Svc.config ~clock
        ~deadline:(if deadline_ms <= 0 then max_int else ms deadline_ms)
        ~retry:
          (if retry <= 0 then None
           else
             Some (Lf_svc.Retry.policy ~max_attempts:retry ~base_delay:(ms 1) ()))
        ~budget:
          (if budget <= 0 then Lf_svc.Retry.Budget.unlimited
           else
             Lf_svc.Retry.Budget.config ~capacity:budget
               ~refill_every:(ms 100) ())
        ~shed:
          (if shed <= 0 then None
           else Some (Lf_svc.Shed.config ~max_queue:shed ~est_init:(ms 1) ()))
        ~breaker:
          (if not breaker then None
           else
             Some
               (Lf_svc.Breaker.config ~window:(ms 1000)
                  ~latency_threshold:(ms 100) ~open_for:(ms 1000) ()))
        ~backoff:(fun d -> Unix.sleepf (float_of_int d /. 1e9))
        ()
    in
    (* Two server shapes behind one dispatch: the single-instance
       pipeline (unchanged), or --shards N instances behind the
       consistent-hash router, each with its own pipeline built from
       the same flags.  KILL flips a per-shard switch that makes that
       backend raise — the containment demo for the CI smoke: the
       victim's breaker trips and HEALTH turns "s<i>=degraded" while
       the other shards keep answering.  The accept loop is
       sequential, so plain bool switches suffice. *)
    if (self_heal || replicas) && shards <= 1 then begin
      prerr_endline "lfdict serve: --self-heal/--replicas need --shards > 1";
      exit 2
    end;
    let op_h, multi_h, health_h, metrics_h, kill_h, newly_open_h, replicas_h,
        heal_h, tick_raw =
      if shards <= 1 then
        let svc = Lf_svc.Svc.create cfg (svc_ops (module D)) in
        ( (fun ctx req -> Lf_svc.Svc.call svc ~ctx req),
          (fun ctx reqs -> Lf_svc.Svc.call_many svc ~ctx reqs),
          (fun () -> Lf_svc.Wire.health_line (Lf_svc.Svc.stats svc)),
          (fun () -> Lf_obs.Prom.snapshot ()),
          (fun _ -> Lf_svc.Wire.format_error "no shards (serve with --shards)"),
          (let prev = ref false in
           fun () ->
             let open_ =
               match (Lf_svc.Svc.stats svc).breaker with
               | Some b when b <> "closed" -> true
               | Some _ | None -> false
             in
             let fresh = open_ && not !prev in
             prev := open_;
             if fresh then [ 0 ] else []),
          (fun () ->
            Lf_svc.Wire.format_error "no replicas (serve with --replicas)"),
          (fun () ->
            Lf_svc.Wire.format_error "no supervisor (serve with --self-heal)"),
          fun () -> [] )
      else begin
        let kills = Array.make shards false in
        let mk_backend i : Lf_shard.Router.backend =
          let t = D.create () in
          let guard f = if kills.(i) then failwith "shard killed" else f () in
          let span op key ok f =
            Lf_obs.Recorder.span_begin ~op ~key;
            let r = f () in
            Lf_obs.Recorder.span_end ~op ~ok:(ok r);
            r
          in
          {
            Lf_shard.Router.insert =
              (fun k v ->
                guard (fun () ->
                    span Lf_obs.Obs_event.Insert k Fun.id (fun () ->
                        D.insert t k v)));
            delete =
              (fun k ->
                guard (fun () ->
                    span Lf_obs.Obs_event.Delete k Fun.id (fun () ->
                        D.delete t k)));
            find =
              (fun k ->
                guard (fun () ->
                    span Lf_obs.Obs_event.Find k Option.is_some (fun () ->
                        D.find t k)));
            batched = None;
          }
        in
        let ring = Lf_shard.Hash_ring.create ~seed:1 ~shards () in
        let router =
          Lf_shard.Router.create ~ring ~svc_config:(fun _ -> cfg) mk_backend
        in
        (* Replicas: every slot's copy lives one shard over, in a store
           private to the replica layer (never a shard backend), fed
           asynchronously from the write journal on the supervisor's
           tick. *)
        let reps =
          if not replicas then None
          else begin
            let r = Lf_shard.Replica.create () in
            for slot = 0 to shards - 1 do
              let copy = D.create () in
              Lf_shard.Replica.add_slot r ~slot
                ~on:((Lf_shard.Hash_ring.owner ring slot + 1) mod shards)
                ~store:
                  {
                    Lf_shard.Replica.r_insert = (fun k v -> D.insert copy k v);
                    r_delete = (fun k -> D.delete copy k);
                    r_find = (fun k -> D.find copy k);
                  }
            done;
            Lf_shard.Router.attach_replicas router r;
            Some r
          end
        in
        let sup =
          if not self_heal then None
          else
            Some
              (Lf_shard.Supervisor.create
                 (Lf_shard.Supervisor.config ~clock ~poll_every:(ms 100)
                    ~sick_after:2 ~healthy_after:2 ~move_budget:2
                    ~backoff_base:(ms 200) ~backoff_max:(ms 2000)
                    ~apply_budget:1024 ~key_range ())
                 ~shards)
        in
        let mon = Lf_shard.Health.monitor () in
        ( (fun ctx req -> Lf_shard.Router.call router ~ctx req),
          (fun ctx reqs -> Lf_shard.Router.call_many router ~ctx reqs),
          (fun () -> Lf_shard.Health.line router),
          (fun () ->
            let shard_of k = string_of_int (Lf_shard.Router.route router k) in
            Lf_obs.Prom.snapshot ()
            ^ Lf_obs.Prom.render_metrics
                (Lf_shard.Health.metrics router
                @ [
                    {
                      Lf_obs.Prom.m_name = "lf_shard_cas_failures_total";
                      m_help =
                        "Keyed C&S failures attributed to the owning shard";
                      m_type = "counter";
                      m_samples =
                        List.map
                          (fun (g, n) ->
                            ([ ("shard", g) ], float_of_int n))
                          (Lf_obs.Profile.by_group ~group:shard_of
                             (Lf_obs.Recorder.profile ()));
                    };
                  ])),
          (fun s ->
            if s < 0 || s >= shards then Lf_svc.Wire.format_error "bad shard"
            else begin
              kills.(s) <- true;
              (* The kill's own bundle names this shard; pre-marking the
                 monitor keeps the inevitable breaker trip from firing a
                 second, breaker-open bundle for the same incident. *)
              Lf_shard.Health.mark_open mon s;
              "OK true"
            end),
          (fun () -> Lf_shard.Health.newly_open mon router),
          (fun () ->
            match reps with
            | None ->
                Lf_svc.Wire.format_error "no replicas (serve with --replicas)"
            | Some r ->
                let rs = Lf_shard.Replica.stats r ~now:(now ()) in
                Printf.sprintf "REPLICAS n=%d%s" (List.length rs)
                  (String.concat ""
                     (List.map
                        (fun (s : Lf_shard.Replica.slot_stats) ->
                          Printf.sprintf
                            " slot=%d on=%d lag=%d pending=%d applied=%d"
                            s.Lf_shard.Replica.s_slot s.Lf_shard.Replica.s_on
                            s.Lf_shard.Replica.s_lag
                            s.Lf_shard.Replica.s_pending
                            s.Lf_shard.Replica.s_applied)
                        rs))),
          (fun () ->
            match sup with
            | None ->
                Lf_svc.Wire.format_error "no supervisor (serve with --self-heal)"
            | Some sup -> Lf_shard.Supervisor.line sup),
          fun () ->
            match sup with
            | Some sup ->
                let fast_burn = Lf_obs.Slo.fast_burn slo ~now:(now ()) in
                ignore (Lf_shard.Supervisor.run_tick ~fast_burn sup router);
                Lf_shard.Supervisor.events sup
            | None ->
                (* Replication without a supervisor still needs its
                   async applier: a bounded slice per request. *)
                (match reps with
                | Some r -> ignore (Lf_shard.Replica.apply ~budget:256 r)
                | None -> ());
                [] )
      end
    in
    (* Flight-recorder anomaly triggers.  The dump is a serialization of
       rings that are already populated, so firing it from the accept
       loop costs one traversal — no steady-state overhead. *)
    let dump reason meta =
      if trace_requests then begin
        let path, _ = Lf_obs.Flight.dump ~dir:dump_dir ~reason ~meta () in
        Printf.printf "lfdict serve: flight dump %s (%s)\n%!" path reason
      end
    in
    let burning = ref false in
    let check_anomalies () =
      if trace_requests then begin
        (* The monitor caches the last open-breaker snapshot, so a KILL
           (which pre-marks its victim and dumps its own bundle) followed
           immediately by FLIGHTDUMP or traffic cannot double-fire a
           breaker-open bundle for the same opening. *)
        let newly = newly_open_h () in
        if newly <> [] then
          dump "breaker-open"
            [
              ( "shards",
                String.concat "," (List.map string_of_int newly) );
            ];
        let fb = Lf_obs.Slo.fast_burn slo ~now:(now ()) in
        if fb && not !burning then dump "slo-fast-burn" [];
        burning := fb
      end
    in
    (* The supervisor rides the request path: every wire line gives it a
       chance to poll — the poll_every gate (Clock ticks, never sleeps)
       makes the extra calls free — and its heal begin/end events become
       flight bundles. *)
    let sup_tick () =
      List.iter
        (function
          | Lf_shard.Supervisor.Heal_begun { e_shard; e_slot; e_to; e_via } ->
              dump "heal-begin"
                [
                  ("shard", string_of_int e_shard);
                  ("slot", string_of_int e_slot);
                  ("to", string_of_int e_to);
                  ( "via",
                    match e_via with
                    | Lf_shard.Supervisor.Copy -> "copy"
                    | Lf_shard.Supervisor.Promote -> "promote" );
                ]
          | Lf_shard.Supervisor.Heal_ended { e_shard; e_slot; e_ok; e_moved }
            ->
              dump "heal-end"
                [
                  ("shard", string_of_int e_shard);
                  ("slot", string_of_int e_slot);
                  ("ok", string_of_bool e_ok);
                  ("moved", string_of_int e_moved);
                ])
        (tick_raw ())
    in
    (* A stale answer is still an answered read: the SLO counts served,
       fresh or lag-tagged — the staleness contract is the wire token's
       job, the burn rate's job is "did we answer". *)
    let good = function
      | Lf_svc.Svc.Served _ | Lf_svc.Svc.Served_stale _ -> true
      | Lf_svc.Svc.Rejected _ | Lf_svc.Svc.Failed _ -> false
    in
    (* One root span per wire request; ended ok iff every outcome was
       served, which is also what the SLO counts as good. *)
    let traced name f =
      let ctx =
        if trace_requests then Lf_obs.Span.root ~name ~now:(now ())
        else Lf_obs.Span.nil
      in
      let outcomes = f ctx in
      let ok = List.for_all good outcomes in
      Lf_obs.Span.end_ ctx ~now:(now ()) ~ok;
      List.iter (fun o -> Lf_obs.Slo.observe slo ~now:(now ()) ~good:(good o))
        outcomes;
      check_anomalies ();
      outcomes
    in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen sock 8;
    Printf.printf "lfdict serve: %s on 127.0.0.1:%d\n%!" D.name port;
    let shutdown = ref false in
    while not !shutdown do
      let fd, _ = Unix.accept sock in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let quit = ref false in
      (try
         while not (!quit || !shutdown) do
           match input_line ic with
           | exception End_of_file -> quit := true
           | line ->
               sup_tick ();
               (match Lf_svc.Wire.parse line with
               | Error e ->
                   output_string oc (Lf_svc.Wire.format_error e);
                   output_char oc '\n'
               | Ok (Lf_svc.Wire.Op req) ->
                   let out =
                     match traced "request" (fun ctx -> [ op_h ctx req ]) with
                     | [ o ] -> o
                     | _ -> assert false
                   in
                   output_string oc (Lf_svc.Wire.format_outcome out);
                   output_char oc '\n'
               | Ok (Lf_svc.Wire.Multi reqs) ->
                   let outs = traced "multi" (fun ctx -> multi_h ctx reqs) in
                   output_string oc (Lf_svc.Wire.format_multi outs);
                   output_char oc '\n'
               | Ok (Lf_svc.Wire.Kill s) ->
                   let resp = kill_h s in
                   output_string oc resp;
                   output_char oc '\n';
                   if resp = "OK true" then
                     dump "shard-kill" [ ("shard", string_of_int s) ]
               | Ok Lf_svc.Wire.Health ->
                   output_string oc (health_h ());
                   output_char oc '\n'
               | Ok Lf_svc.Wire.Metrics ->
                   output_string oc (metrics_h ());
                   output_string oc "END\n"
               | Ok Lf_svc.Wire.Slo ->
                   output_string oc (Lf_obs.Slo.line slo ~now:(now ()));
                   output_char oc '\n'
               | Ok Lf_svc.Wire.Replicas ->
                   output_string oc (replicas_h ());
                   output_char oc '\n'
               | Ok Lf_svc.Wire.Heal ->
                   output_string oc (heal_h ());
                   output_char oc '\n'
               | Ok Lf_svc.Wire.Flightdump ->
                   (if not trace_requests then
                      output_string oc
                        (Lf_svc.Wire.format_error
                           "tracing off (serve with --trace-requests)")
                    else
                      let path, _ =
                        Lf_obs.Flight.dump ~dir:dump_dir ~reason:"manual" ()
                      in
                      output_string oc ("OK " ^ path));
                   output_char oc '\n'
               | Ok Lf_svc.Wire.Quit -> quit := true
               | Ok Lf_svc.Wire.Shutdown ->
                   output_string oc "OK true\n";
                   shutdown := true);
               flush oc
         done
       with Sys_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())
    done;
    Unix.close sock
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve an implementation over a line-protocol TCP socket, behind \
          the lib/svc robustness pipeline (deadlines, retry budgets, load \
          shedding, circuit breaking), optionally sharded behind a \
          consistent-hash router (--shards), with optional end-to-end \
          request tracing, SLO burn tracking and an anomaly-triggered \
          flight recorder (--trace-requests), lagged read replicas with \
          an explicit staleness contract (--replicas), and a \
          self-healing shard supervisor (--self-heal).  Protocol: PUT k \
          v / DEL k / GET k / MGET k.. / MSET k v.. / KILL i / HEALTH / \
          METRICS / SLO / REPLICAS / HEAL / FLIGHTDUMP / QUIT / \
          SHUTDOWN, one per line.")
    Term.(
      const run $ impl_arg $ port_arg $ deadline_ms_arg $ retry_arg
      $ retry_budget_arg $ shed_arg $ breaker_flag $ shards_arg
      $ trace_requests_flag $ dump_dir_arg $ self_heal_flag $ replicas_flag
      $ key_range_arg)

let call_cmd =
  let lines_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"LINE" ~doc:"Protocol lines, e.g. 'PUT 1 2'.")
  in
  let connect_retries_arg =
    Arg.(
      value & opt int 20
      & info [ "connect-retries" ] ~docv:"N"
          ~doc:"Connection attempts, 250ms apart (CI starts the server \
                in the background).")
  in
  let run port retries lines =
    let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
    let rec connect attempt =
      let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect sock addr;
        sock
      with Unix.Unix_error _ when attempt < retries ->
        (try Unix.close sock with Unix.Unix_error _ -> ());
        Unix.sleepf 0.25;
        connect (attempt + 1)
    in
    let sock = connect 0 in
    let ic = Unix.in_channel_of_descr sock in
    let oc = Unix.out_channel_of_descr sock in
    let read_one () =
      match input_line ic with
      | l -> print_endline l
      | exception End_of_file ->
          prerr_endline "connection closed";
          exit 1
    in
    List.iter
      (fun line ->
        output_string oc line;
        output_char oc '\n';
        flush oc;
        match Lf_svc.Wire.parse line with
        | Ok Lf_svc.Wire.Metrics ->
            let rec drain () =
              match input_line ic with
              | "END" -> print_endline "END"
              | l ->
                  print_endline l;
                  drain ()
              | exception End_of_file -> ()
            in
            drain ()
        | Ok Lf_svc.Wire.Quit -> ()
        | _ -> read_one ())
      lines;
    try Unix.close sock with Unix.Unix_error _ -> ()
  in
  Cmd.v
    (Cmd.info "call"
       ~doc:
         "Send protocol lines to a running $(b,lfdict serve) and print the \
          responses (a tiny client for smoke tests and CI).")
    Term.(const run $ port_arg $ connect_retries_arg $ lines_arg)

let flightdump_cmd =
  let run port =
    let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect sock addr
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "connect failed: %s\n" (Unix.error_message e);
       exit 1);
    let ic = Unix.in_channel_of_descr sock in
    let oc = Unix.out_channel_of_descr sock in
    output_string oc "FLIGHTDUMP\n";
    flush oc;
    (match input_line ic with
    | line ->
        print_endline line;
        if String.length line >= 3 && String.sub line 0 3 = "ERR" then exit 1
    | exception End_of_file ->
        prerr_endline "connection closed";
        exit 1);
    try Unix.close sock with Unix.Unix_error _ -> ()
  in
  Cmd.v
    (Cmd.info "flightdump"
       ~doc:
         "Ask a running $(b,lfdict serve --trace-requests) to dump its \
          flight recorder; prints $(b,OK <path>) on success.")
    Term.(const run $ port_arg)

let () =
  let info =
    Cmd.info "lfdict" ~version:"1.0"
      ~doc:"Lock-free linked lists and skip lists (Fomitchev-Ruppert, PODC'04)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            throughput_cmd;
            check_cmd;
            chaos_cmd;
            trace_cmd;
            metrics_cmd;
            model_cmd;
            serve_cmd;
            call_cmd;
            flightdump_cmd;
            list_cmd;
          ]))
